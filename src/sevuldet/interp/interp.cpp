#include "sevuldet/interp/interp.hpp"

#include "sevuldet/frontend/ast_text.hpp"

#include <cstring>
#include <map>
#include <stdexcept>

namespace sevuldet::interp {

using frontend::Expr;
using frontend::ExprKind;
using frontend::Stmt;
using frontend::StmtKind;

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::Ok: return "ok";
    case Outcome::OutOfBounds: return "out-of-bounds";
    case Outcome::NullDeref: return "null-deref";
    case Outcome::UseAfterFree: return "use-after-free";
    case Outcome::DoubleFree: return "double-free";
    case Outcome::DivByZero: return "div-by-zero";
    case Outcome::Hang: return "hang";
    case Outcome::UnsupportedConstruct: return "unsupported";
  }
  return "?";
}

bool is_crash(Outcome outcome) {
  switch (outcome) {
    case Outcome::OutOfBounds:
    case Outcome::NullDeref:
    case Outcome::UseAfterFree:
    case Outcome::DoubleFree:
    case Outcome::DivByZero:
      return true;
    default:
      return false;
  }
}

namespace {

struct ArrayObj {
  std::vector<std::int64_t> data;
  bool freed = false;
  bool heap = false;
};
using ArrayPtr = std::shared_ptr<ArrayObj>;

struct Value {
  enum class Kind { Int, Pointer } kind = Kind::Int;
  std::int64_t i = 0;
  ArrayPtr array;           // null => NULL pointer when kind == Pointer
  std::int64_t offset = 0;

  static Value integer(std::int64_t v) {
    Value out;
    out.i = v;
    return out;
  }
  static Value pointer(ArrayPtr a, std::int64_t off = 0) {
    Value out;
    out.kind = Kind::Pointer;
    out.array = std::move(a);
    out.offset = off;
    return out;
  }
  bool truthy() const {
    return kind == Kind::Int ? i != 0 : array != nullptr;
  }
};

/// Wrap to 32-bit two's complement (the 9104-style overflow depends on
/// faithful int semantics).
std::int64_t wrap32(std::int64_t v) {
  return static_cast<std::int64_t>(static_cast<std::int32_t>(
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(v))));
}

struct Fault {
  Outcome outcome;
  int line;
  std::string detail;
};

struct Flow {
  enum class Kind { Normal, Break, Continue, Return } kind = Kind::Normal;
  Value ret;
};

}  // namespace

struct Interpreter::Impl {
  const frontend::TranslationUnit& unit;
  std::span<const std::uint8_t> input;
  std::size_t input_pos = 0;
  long long steps = 0;
  long long step_limit = 0;
  ExecResult* result = nullptr;
  std::vector<std::map<std::string, Value>> scopes;

  explicit Impl(const frontend::TranslationUnit& u) : unit(u) {}

  void tick(int line) {
    if (++steps > step_limit) throw Fault{Outcome::Hang, line, "step limit"};
  }

  std::uint8_t next_byte() {
    return input_pos < input.size() ? input[input_pos++] : 0;
  }

  Value* find_var(const std::string& name) {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      auto vit = it->find(name);
      if (vit != it->end()) return &vit->second;
    }
    return nullptr;
  }

  Value& var(const std::string& name, int line) {
    Value* v = find_var(name);
    if (v == nullptr) {
      // Implicitly materialize unknown names as 0 — generated programs
      // occasionally reference globals the harness does not model.
      scopes.front()[name] = Value::integer(0);
      v = &scopes.front()[name];
      (void)line;
    }
    return *v;
  }

  // --- memory ---------------------------------------------------------

  std::int64_t load(const ArrayPtr& array, std::int64_t off, int line) {
    if (array == nullptr) throw Fault{Outcome::NullDeref, line, "load NULL"};
    if (array->freed) throw Fault{Outcome::UseAfterFree, line, "load freed"};
    if (off < 0 || off >= static_cast<std::int64_t>(array->data.size())) {
      throw Fault{Outcome::OutOfBounds, line,
                  "load offset " + std::to_string(off) + " size " +
                      std::to_string(array->data.size())};
    }
    return array->data[static_cast<std::size_t>(off)];
  }

  void store(const ArrayPtr& array, std::int64_t off, std::int64_t value, int line) {
    if (array == nullptr) throw Fault{Outcome::NullDeref, line, "store NULL"};
    if (array->freed) throw Fault{Outcome::UseAfterFree, line, "store freed"};
    if (off < 0 || off >= static_cast<std::int64_t>(array->data.size())) {
      throw Fault{Outcome::OutOfBounds, line,
                  "store offset " + std::to_string(off) + " size " +
                      std::to_string(array->data.size())};
    }
    array->data[static_cast<std::size_t>(off)] = value;
  }

  // --- lvalues -------------------------------------------------------------

  struct Place {
    enum class Kind { Var, Element } kind = Kind::Var;
    Value* variable = nullptr;
    ArrayPtr array;
    std::int64_t offset = 0;
  };

  Place eval_place(const Expr& e) {
    switch (e.kind) {
      case ExprKind::Ident: {
        Place p;
        p.variable = &var(e.text, e.line);
        return p;
      }
      case ExprKind::Index: {
        Value base = eval(*e.children[0]);
        Value idx = eval(*e.children[1]);
        if (base.kind != Value::Kind::Pointer) {
          throw Fault{Outcome::UnsupportedConstruct, e.line, "index non-pointer"};
        }
        Place p;
        p.kind = Place::Kind::Element;
        p.array = base.array;
        p.offset = base.offset + idx.i;
        return p;
      }
      case ExprKind::Unary:
        if (e.op == "*") {
          Value base = eval(*e.children[0]);
          if (base.kind != Value::Kind::Pointer) {
            throw Fault{Outcome::NullDeref, e.line, "deref of non-pointer"};
          }
          Place p;
          p.kind = Place::Kind::Element;
          p.array = base.array;
          p.offset = base.offset;
          return p;
        }
        break;
      case ExprKind::Cast:
        return eval_place(*e.children[0]);
      default:
        break;
    }
    throw Fault{Outcome::UnsupportedConstruct, e.line, "unsupported lvalue"};
  }

  std::int64_t read_place(const Place& p, int line) {
    if (p.kind == Place::Kind::Var) {
      return p.variable->kind == Value::Kind::Int ? p.variable->i
                                                  : (p.variable->array ? 1 : 0);
    }
    return load(p.array, p.offset, line);
  }

  void write_place(const Place& p, const Value& value, int line) {
    if (p.kind == Place::Kind::Var) {
      *p.variable = value;
      if (p.variable->kind == Value::Kind::Int) p.variable->i = wrap32(p.variable->i);
      return;
    }
    store(p.array, p.offset, value.i, line);
  }

  // --- expressions ------------------------------------------------------

  Value eval(const Expr& e) {
    tick(e.line);
    switch (e.kind) {
      case ExprKind::IntLit: {
        // Handle decimal and hex literals with suffixes.
        try {
          return Value::integer(wrap32(std::stoll(e.text, nullptr, 0)));
        } catch (const std::exception&) {
          return Value::integer(0);
        }
      }
      case ExprKind::FloatLit:
        return Value::integer(0);  // floats degrade to 0 in this subset
      case ExprKind::CharLit: {
        if (e.text.size() >= 3 && e.text[1] != '\\') {
          return Value::integer(static_cast<unsigned char>(e.text[1]));
        }
        if (e.text.size() >= 4) {  // '\n' etc.
          switch (e.text[2]) {
            case 'n': return Value::integer('\n');
            case 't': return Value::integer('\t');
            case '0': return Value::integer(0);
            default: return Value::integer(static_cast<unsigned char>(e.text[2]));
          }
        }
        return Value::integer(0);
      }
      case ExprKind::StringLit: {
        // Strings become fresh char arrays (NUL-terminated).
        auto arr = std::make_shared<ArrayObj>();
        for (std::size_t i = 1; i + 1 < e.text.size(); ++i) {
          char c = e.text[i];
          if (c == '\\' && i + 2 < e.text.size()) {
            ++i;
            c = e.text[i] == 'n' ? '\n' : e.text[i] == 't' ? '\t' : e.text[i];
          }
          arr->data.push_back(static_cast<unsigned char>(c));
        }
        arr->data.push_back(0);
        return Value::pointer(std::move(arr));
      }
      case ExprKind::Ident: {
        if (e.text == "NULL") return Value::pointer(nullptr);
        if (e.text == "INT_MAX") return Value::integer(2147483647);
        if (e.text == "INT_MIN") return Value::integer(-2147483648LL);
        return var(e.text, e.line);
      }
      case ExprKind::Unary: {
        if (e.op == "*" || e.op == "&") {
          if (e.op == "&") {
            Place p = eval_place(*e.children[0]);
            if (p.kind == Place::Kind::Element) {
              return Value::pointer(p.array, p.offset);
            }
            // &scalar: model as a one-element array view (rare in corpus).
            auto arr = std::make_shared<ArrayObj>();
            arr->data.push_back(read_place(p, e.line));
            return Value::pointer(std::move(arr));
          }
          Place p = eval_place(e);
          return Value::integer(read_place(p, e.line));
        }
        if (e.op == "++" || e.op == "--") {
          Place p = eval_place(*e.children[0]);
          std::int64_t v = read_place(p, e.line) + (e.op == "++" ? 1 : -1);
          write_place(p, Value::integer(wrap32(v)), e.line);
          return Value::integer(wrap32(v));
        }
        Value v = eval(*e.children[0]);
        if (e.op == "-") return Value::integer(wrap32(-v.i));
        if (e.op == "+") return v;
        if (e.op == "!") return Value::integer(v.truthy() ? 0 : 1);
        if (e.op == "~") return Value::integer(wrap32(~v.i));
        throw Fault{Outcome::UnsupportedConstruct, e.line, "unary " + e.op};
      }
      case ExprKind::PostfixUnary: {
        Place p = eval_place(*e.children[0]);
        std::int64_t old = read_place(p, e.line);
        write_place(p, Value::integer(wrap32(old + (e.op == "++" ? 1 : -1))), e.line);
        return Value::integer(old);
      }
      case ExprKind::Binary:
        return eval_binary(e);
      case ExprKind::Assign:
        return eval_assign(e);
      case ExprKind::Ternary:
        return eval(*e.children[0]).truthy() ? eval(*e.children[1])
                                             : eval(*e.children[2]);
      case ExprKind::Call:
        return eval_call(e);
      case ExprKind::Index: {
        Place p = eval_place(e);
        return Value::integer(load(p.array, p.offset, e.line));
      }
      case ExprKind::Member:
        // Structs are not modeled; members degrade to plain variables
        // named base_field (the realworld generator avoids them).
        return var(frontend::expr_text(e), e.line);
      case ExprKind::Cast:
        return eval(*e.children[0]);
      case ExprKind::SizeOf: {
        if (!e.children.empty()) {
          // sizeof expr — for pointers report array size (sizeof(buf)).
          if (e.children[0]->kind == ExprKind::Ident) {
            Value* v = find_var(e.children[0]->text);
            if (v != nullptr && v->kind == Value::Kind::Pointer && v->array) {
              return Value::integer(
                  static_cast<std::int64_t>(v->array->data.size()));
            }
          }
          return Value::integer(4);
        }
        return Value::integer(e.text.find('*') != std::string::npos ? 8 : 4);
      }
      case ExprKind::Comma: {
        Value last = Value::integer(0);
        for (const auto& child : e.children) last = eval(*child);
        return last;
      }
    }
    throw Fault{Outcome::UnsupportedConstruct, e.line, "expression"};
  }

  Value eval_binary(const Expr& e) {
    // Short-circuit operators first.
    if (e.op == "&&") {
      if (!eval(*e.children[0]).truthy()) return Value::integer(0);
      return Value::integer(eval(*e.children[1]).truthy() ? 1 : 0);
    }
    if (e.op == "||") {
      if (eval(*e.children[0]).truthy()) return Value::integer(1);
      return Value::integer(eval(*e.children[1]).truthy() ? 1 : 0);
    }
    Value a = eval(*e.children[0]);
    Value b = eval(*e.children[1]);
    // Pointer arithmetic: ptr +/- int.
    if (a.kind == Value::Kind::Pointer && b.kind == Value::Kind::Int) {
      if (e.op == "+") return Value::pointer(a.array, a.offset + b.i);
      if (e.op == "-") return Value::pointer(a.array, a.offset - b.i);
    }
    if (a.kind == Value::Kind::Pointer || b.kind == Value::Kind::Pointer) {
      // Pointer comparisons (== != with NULL mostly).
      auto as_flag = [](const Value& v) {
        return v.kind == Value::Kind::Pointer ? (v.array ? 1 : 0) : (v.i != 0);
      };
      if (e.op == "==") return Value::integer(as_flag(a) == as_flag(b));
      if (e.op == "!=") return Value::integer(as_flag(a) != as_flag(b));
      throw Fault{Outcome::UnsupportedConstruct, e.line, "pointer op " + e.op};
    }
    const std::int64_t x = a.i, y = b.i;
    if (e.op == "+") return Value::integer(wrap32(x + y));
    if (e.op == "-") return Value::integer(wrap32(x - y));
    if (e.op == "*") return Value::integer(wrap32(x * y));
    if (e.op == "/") {
      if (y == 0) throw Fault{Outcome::DivByZero, e.line, "division by zero"};
      return Value::integer(wrap32(x / y));
    }
    if (e.op == "%") {
      if (y == 0) throw Fault{Outcome::DivByZero, e.line, "modulo by zero"};
      return Value::integer(wrap32(x % y));
    }
    if (e.op == "<") return Value::integer(x < y);
    if (e.op == ">") return Value::integer(x > y);
    if (e.op == "<=") return Value::integer(x <= y);
    if (e.op == ">=") return Value::integer(x >= y);
    if (e.op == "==") return Value::integer(x == y);
    if (e.op == "!=") return Value::integer(x != y);
    if (e.op == "&") return Value::integer(wrap32(x & y));
    if (e.op == "|") return Value::integer(wrap32(x | y));
    if (e.op == "^") return Value::integer(wrap32(x ^ y));
    if (e.op == "<<") return Value::integer(wrap32(x << (y & 31)));
    if (e.op == ">>") return Value::integer(wrap32(x >> (y & 31)));
    throw Fault{Outcome::UnsupportedConstruct, e.line, "binary " + e.op};
  }

  Value eval_assign(const Expr& e) {
    Place p = eval_place(*e.children[0]);
    Value rhs = eval(*e.children[1]);
    if (e.op == "=") {
      write_place(p, rhs, e.line);
      return rhs;
    }
    // Compound assignment on ints.
    std::int64_t old = read_place(p, e.line);
    std::int64_t y = rhs.i;
    std::int64_t result = 0;
    const std::string op = e.op.substr(0, e.op.size() - 1);
    if (op == "+") result = old + y;
    else if (op == "-") result = old - y;
    else if (op == "*") result = old * y;
    else if (op == "/") {
      if (y == 0) throw Fault{Outcome::DivByZero, e.line, "division by zero"};
      result = old / y;
    } else if (op == "%") {
      if (y == 0) throw Fault{Outcome::DivByZero, e.line, "modulo by zero"};
      result = old % y;
    } else if (op == "&") result = old & y;
    else if (op == "|") result = old | y;
    else if (op == "^") result = old ^ y;
    else if (op == "<<") result = old << (y & 31);
    else if (op == ">>") result = old >> (y & 31);
    else throw Fault{Outcome::UnsupportedConstruct, e.line, "assign " + e.op};
    Value v = Value::integer(wrap32(result));
    write_place(p, v, e.line);
    return v;
  }

  Value eval_call(const Expr& e) {
    const std::string& callee = e.text;
    std::vector<Value> args;
    for (std::size_t i = 1; i < e.children.size(); ++i) {
      args.push_back(eval(*e.children[i]));
    }

    // --- native functions -------------------------------------------------
    if (callee == "input_byte") return Value::integer(next_byte());
    if (callee == "input_int") {
      std::int64_t v = 0;
      for (int i = 0; i < 4; ++i) v |= static_cast<std::int64_t>(next_byte()) << (8 * i);
      return Value::integer(wrap32(v));
    }
    if (callee == "malloc" || callee == "calloc") {
      std::int64_t n = callee == "calloc" && args.size() >= 2 ? args[0].i * args[1].i
                       : !args.empty()                        ? args[0].i
                                                              : 0;
      if (n <= 0 || n > (1 << 22)) return Value::pointer(nullptr);
      auto arr = std::make_shared<ArrayObj>();
      arr->data.assign(static_cast<std::size_t>(n), 0);
      arr->heap = true;
      return Value::pointer(std::move(arr));
    }
    if (callee == "free") {
      if (!args.empty() && args[0].kind == Value::Kind::Pointer && args[0].array) {
        if (args[0].array->freed) {
          throw Fault{Outcome::DoubleFree, e.line, "double free"};
        }
        args[0].array->freed = true;
      }
      return Value::integer(0);
    }
    if (callee == "strlen") {
      if (args.empty() || args[0].kind != Value::Kind::Pointer) {
        return Value::integer(0);
      }
      std::int64_t n = 0;
      while (load(args[0].array, args[0].offset + n, e.line) != 0) ++n;
      return Value::integer(n);
    }
    if (callee == "memcpy" || callee == "memmove") {
      if (args.size() >= 3 && args[0].kind == Value::Kind::Pointer &&
          args[1].kind == Value::Kind::Pointer) {
        for (std::int64_t i = 0; i < args[2].i; ++i) {
          store(args[0].array, args[0].offset + i,
                load(args[1].array, args[1].offset + i, e.line), e.line);
        }
      }
      return args.empty() ? Value::integer(0) : args[0];
    }
    if (callee == "memset") {
      if (args.size() >= 3 && args[0].kind == Value::Kind::Pointer) {
        for (std::int64_t i = 0; i < args[2].i; ++i) {
          store(args[0].array, args[0].offset + i, args[1].i, e.line);
        }
      }
      return args.empty() ? Value::integer(0) : args[0];
    }
    if (callee == "strcpy" || callee == "strncpy") {
      if (args.size() >= 2 && args[0].kind == Value::Kind::Pointer &&
          args[1].kind == Value::Kind::Pointer) {
        std::int64_t limit = callee == "strncpy" && args.size() >= 3
                                 ? args[2].i
                                 : (1LL << 40);
        for (std::int64_t i = 0; i < limit; ++i) {
          std::int64_t c = load(args[1].array, args[1].offset + i, e.line);
          store(args[0].array, args[0].offset + i, c, e.line);
          if (c == 0) break;
        }
      }
      return args.empty() ? Value::integer(0) : args[0];
    }

    // Output / logging / device no-ops.
    static const std::set<std::string> kNoop = {
        "printf", "puts",  "fprintf",  "report", "log_hit", "dma_write",
        "use",    "fputs", "snprintf", "sprintf"};
    if (kNoop.contains(callee)) return Value::integer(0);

    // --- user-defined functions ------------------------------------------
    const frontend::FunctionDef* fn = unit.find_function(callee);
    if (fn == nullptr) return Value::integer(0);  // unknown extern: 0
    return call_user(*fn, args, e.line);
  }

  Value call_user(const frontend::FunctionDef& fn, const std::vector<Value>& args,
                  int call_line) {
    if (scopes.size() > 64) {
      throw Fault{Outcome::Hang, call_line, "recursion depth"};
    }
    std::map<std::string, Value> frame;
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      if (fn.params[i].name.empty()) continue;
      frame[fn.params[i].name] =
          i < args.size() ? args[i] : Value::integer(0);
    }
    scopes.push_back(std::move(frame));
    Flow flow = exec(*fn.body);
    scopes.pop_back();
    return flow.kind == Flow::Kind::Return ? flow.ret : Value::integer(0);
  }

  // --- statements ---------------------------------------------------------

  void branch(int line, bool taken) { result->coverage.insert({line, taken}); }

  Flow exec(const Stmt& stmt) {
    tick(stmt.range.begin_line);
    switch (stmt.kind) {
      case StmtKind::Compound: {
        scopes.push_back({});
        Flow flow;
        for (const auto& child : stmt.children) {
          flow = exec(*child);
          if (flow.kind != Flow::Kind::Normal) break;
        }
        scopes.pop_back();
        return flow;
      }
      case StmtKind::Decl: {
        exec_decl(stmt);
        for (const auto& extra : stmt.children) exec_decl(*extra);
        return {};
      }
      case StmtKind::ExprStmt:
        eval(*stmt.exprs[0]);
        return {};
      case StmtKind::If: {
        const bool taken = eval(*stmt.exprs[0]).truthy();
        branch(stmt.range.begin_line, taken);
        if (taken) return exec(*stmt.children[0]);
        if (stmt.children.size() > 1) return exec(*stmt.children[1]);
        return {};
      }
      case StmtKind::While: {
        for (;;) {
          const bool taken = eval(*stmt.exprs[0]).truthy();
          branch(stmt.range.begin_line, taken);
          if (!taken) return {};
          Flow flow = exec(*stmt.children[0]);
          if (flow.kind == Flow::Kind::Break) return {};
          if (flow.kind == Flow::Kind::Return) return flow;
        }
      }
      case StmtKind::DoWhile: {
        for (;;) {
          Flow flow = exec(*stmt.children[0]);
          if (flow.kind == Flow::Kind::Break) return {};
          if (flow.kind == Flow::Kind::Return) return flow;
          const bool taken = eval(*stmt.exprs[0]).truthy();
          branch(stmt.range.begin_line, taken);
          if (!taken) return {};
        }
      }
      case StmtKind::For: {
        scopes.push_back({});
        std::size_t body_idx = 0;
        if (stmt.for_has_init) {
          exec(*stmt.children[0]);
          body_idx = 1;
        }
        Flow out;
        for (;;) {
          bool taken = true;
          std::size_t expr_idx = 0;
          if (stmt.for_has_cond) taken = eval(*stmt.exprs[expr_idx++]).truthy();
          branch(stmt.range.begin_line, taken);
          if (!taken) break;
          Flow flow = exec(*stmt.children[body_idx]);
          if (flow.kind == Flow::Kind::Break) break;
          if (flow.kind == Flow::Kind::Return) {
            out = flow;
            break;
          }
          if (stmt.for_has_step) {
            eval(*stmt.exprs[stmt.for_has_cond ? 1 : 0]);
          }
        }
        scopes.pop_back();
        return out;
      }
      case StmtKind::Switch: {
        const std::int64_t selector = eval(*stmt.exprs[0]).i;
        bool matched = false;
        branch(stmt.range.begin_line, true);
        for (const auto& child : stmt.children) {
          if (child->kind != StmtKind::Case) continue;
          if (!matched) {
            if (child->name == "default") {
              matched = true;
            } else if (!child->exprs.empty() &&
                       eval(*child->exprs[0]).i == selector) {
              matched = true;
            }
          }
          if (!matched) continue;
          for (const auto& inner : child->children) {
            Flow flow = exec(*inner);
            if (flow.kind == Flow::Kind::Break) return {};
            if (flow.kind != Flow::Kind::Normal) return flow;
          }
        }
        return {};
      }
      case StmtKind::Case:
        throw Fault{Outcome::UnsupportedConstruct, stmt.range.begin_line,
                    "case outside switch"};
      case StmtKind::Break: {
        Flow flow;
        flow.kind = Flow::Kind::Break;
        return flow;
      }
      case StmtKind::Continue: {
        Flow flow;
        flow.kind = Flow::Kind::Continue;
        return flow;
      }
      case StmtKind::Return: {
        Flow flow;
        flow.kind = Flow::Kind::Return;
        if (!stmt.exprs.empty()) flow.ret = eval(*stmt.exprs[0]);
        return flow;
      }
      case StmtKind::Goto:
      case StmtKind::Label:
        // Goto is rare in the interpretable corpus; labels fall through.
        if (stmt.kind == StmtKind::Label) {
          for (const auto& child : stmt.children) {
            Flow flow = exec(*child);
            if (flow.kind != Flow::Kind::Normal) return flow;
          }
          return {};
        }
        throw Fault{Outcome::UnsupportedConstruct, stmt.range.begin_line, "goto"};
      case StmtKind::Null:
        return {};
    }
    return {};
  }

  void exec_decl(const Stmt& decl) {
    Value init = Value::integer(0);
    if (decl.for_has_init) init = eval(*decl.exprs[0]);
    if (decl.decl_is_array) {
      // Evaluate the extent (first extent expression after the optional
      // initializer; defaults to the initializer length or 1).
      std::int64_t extent = 0;
      std::size_t extent_idx = decl.for_has_init ? 1 : 0;
      if (extent_idx < decl.exprs.size()) {
        extent = eval(*decl.exprs[extent_idx]).i;
      }
      if (extent <= 0) extent = 1;
      if (extent > (1 << 22)) extent = 1 << 22;
      auto arr = std::make_shared<ArrayObj>();
      arr->data.assign(static_cast<std::size_t>(extent), 0);
      scopes.back()[decl.name] = Value::pointer(std::move(arr));
      return;
    }
    if (decl.decl_is_pointer && !decl.for_has_init) {
      scopes.back()[decl.name] = Value::pointer(nullptr);
      return;
    }
    if (init.kind == Value::Kind::Int) init.i = wrap32(init.i);
    scopes.back()[decl.name] = init;
  }
};

Interpreter::Interpreter(const frontend::TranslationUnit& unit)
    : impl_(std::make_unique<Impl>(unit)) {}

Interpreter::~Interpreter() = default;

ExecResult Interpreter::run(std::span<const std::uint8_t> input,
                            const ExecOptions& options) {
  ExecResult result;
  impl_->input = input;
  impl_->input_pos = 0;
  impl_->steps = 0;
  impl_->step_limit = options.step_limit;
  impl_->result = &result;
  impl_->scopes.clear();
  impl_->scopes.push_back({});  // pseudo-globals

  const frontend::FunctionDef* entry = impl_->unit.find_function(options.entry);
  if (entry == nullptr) {
    result.outcome = Outcome::UnsupportedConstruct;
    result.detail = "no entry function " + options.entry;
    return result;
  }
  std::vector<Value> args;
  for (std::int64_t a : options.entry_args) args.push_back(Value::integer(a));

  try {
    Value ret = impl_->call_user(*entry, args, entry->range.begin_line);
    result.return_value = ret.kind == Value::Kind::Int ? ret.i : 0;
  } catch (const Fault& fault) {
    result.outcome = fault.outcome;
    result.fault_line = fault.line;
    result.detail = fault.detail;
  }
  result.steps = impl_->steps;
  return result;
}

}  // namespace sevuldet::interp
