// Concrete interpreter for the C subset. It executes the frontend AST
// directly with a memory-safety-checking runtime: array bounds, null
// dereference, use-after-free, division by zero, and 32-bit wrapping
// integer arithmetic are all modeled, and a step budget turns infinite
// loops into Hang outcomes. Branch coverage is recorded per execution.
//
// This is the substitute substrate for the paper's AFL experiment
// (Table VII): the fuzzer baseline mutates a byte buffer that programs
// consume through the native `input_byte()` / `input_int()` functions,
// and crashes/hangs are detected exactly where a sanitizer+AFL harness
// would detect them.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "sevuldet/frontend/ast.hpp"

namespace sevuldet::interp {

enum class Outcome {
  Ok,
  OutOfBounds,
  NullDeref,
  UseAfterFree,
  DoubleFree,
  DivByZero,
  Hang,
  UnsupportedConstruct,
};

const char* outcome_name(Outcome outcome);
bool is_crash(Outcome outcome);  // true for OOB/NullDeref/UAF/DoubleFree/Div0

struct ExecResult {
  Outcome outcome = Outcome::Ok;
  int fault_line = 0;
  std::string detail;
  long long steps = 0;
  std::int64_t return_value = 0;
  /// (source line of a branch, branch taken?) pairs — the coverage
  /// signal for the fuzzer.
  std::set<std::pair<int, bool>> coverage;
};

struct ExecOptions {
  long long step_limit = 200000;
  std::string entry = "harness_main";
  /// Arguments passed to the entry function (ints only).
  std::vector<std::int64_t> entry_args;
};

class Interpreter {
 public:
  /// The unit must outlive the interpreter.
  explicit Interpreter(const frontend::TranslationUnit& unit);
  ~Interpreter();
  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  /// Execute the entry function against a fuzz input buffer.
  ExecResult run(std::span<const std::uint8_t> input,
                 const ExecOptions& options = {});

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sevuldet::interp
