#include "sevuldet/serve/client.hpp"

#include <utility>

namespace sevuldet::serve {

std::optional<Client> Client::connect(const std::string& socket_path) {
  std::optional<util::UnixStream> stream = util::UnixStream::connect(socket_path);
  if (!stream.has_value()) return std::nullopt;
  return Client(std::move(*stream));
}

Response Client::roundtrip(Request request, int timeout_ms) {
  if (request.id == 0) request.id = next_id_++;
  stream_.send_frame(request_to_json(request));
  std::optional<std::string> payload =
      stream_.recv_frame(util::kDefaultMaxFrameBytes, timeout_ms);
  if (!payload.has_value()) {
    throw std::runtime_error("daemon closed the connection without replying");
  }
  return parse_response(*payload);
}

std::vector<core::Finding> Client::scan(const std::string& source, int top_k,
                                        bool explain, double deadline_ms,
                                        int timeout_ms,
                                        const std::string& trace_id) {
  Request request;
  request.op = explain ? Op::Explain : Op::Scan;
  request.source = source;
  request.top_k = top_k;
  request.deadline_ms = deadline_ms;
  request.trace_id = trace_id;
  Response response = roundtrip(std::move(request), timeout_ms);
  if (response.error.has_value()) {
    throw DaemonError(response.error->code, response.error->message);
  }
  if (!response.ok) throw std::runtime_error("daemon replied ok=false");
  return std::move(response.findings);
}

core::TreeScanResult Client::scan_tree(const std::string& root, int top_k,
                                       double deadline_ms, int timeout_ms) {
  Request request;
  request.op = Op::ScanTree;
  request.root = root;
  request.top_k = top_k;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request), timeout_ms);
  if (response.error.has_value()) {
    throw DaemonError(response.error->code, response.error->message);
  }
  if (!response.ok || response.status_json.empty()) {
    throw std::runtime_error("daemon replied without a tree scan result");
  }
  return tree_scan_from_json(response.status_json);
}

std::string Client::report_status(int timeout_ms) {
  Request request;
  request.op = Op::ReportStatus;
  Response response = roundtrip(std::move(request), timeout_ms);
  if (response.error.has_value()) {
    throw DaemonError(response.error->code, response.error->message);
  }
  return std::move(response.status_json);
}

std::string Client::metrics(const std::string& format, int history,
                            int timeout_ms) {
  Request request;
  request.op = Op::Metrics;
  request.format = format;
  request.history = history;
  Response response = roundtrip(std::move(request), timeout_ms);
  if (response.error.has_value()) {
    throw DaemonError(response.error->code, response.error->message);
  }
  if (!response.ok || response.status_json.empty()) {
    throw std::runtime_error("daemon replied without a metrics payload");
  }
  return std::move(response.status_json);
}

void Client::shutdown(int timeout_ms) {
  Request request;
  request.op = Op::Shutdown;
  Response response = roundtrip(std::move(request), timeout_ms);
  if (response.error.has_value()) {
    throw DaemonError(response.error->code, response.error->message);
  }
}

}  // namespace sevuldet::serve
