// The `sevuldet serve` daemon core: a Unix-domain-socket server that
// loads the model once and answers scan / explain / report-status /
// shutdown requests (serve/protocol.hpp) over checksummed frames
// (util/socket.hpp).
//
// Threading model:
//
//   acceptor (run())          one per-connection thread per client
//   ─ accept loop ──────────▶ ─ recv frame ─ parse ─ admit ─┐
//                                                           ▼
//                             bounded admission queue (queue_depth)
//                                                           │
//   worker threads (threads)  ◀─ dequeue ── deadline check ─┘
//   ─ prepare() ─ MicroBatcher::predict_many() ─ findings ─▶ promise
//                                                           │
//   connection thread         ◀─ future ── send reply ──────┘
//
// Gadget scoring funnels through one MicroBatcher, so concurrent
// requests' gadgets coalesce into shared CNN batches. Admission is
// bounded: a full queue yields a typed queue_full error instead of
// unbounded buffering. Every request carries a deadline (its own
// deadline_ms or the server default), checked at dequeue and again
// after inference — exceeding it yields a typed deadline_exceeded
// error, never a silent slow reply.
//
// Shutdown (the `shutdown` op or request_shutdown()) is a drain, not an
// abort: the ack is sent, the listener closes (socket file unlinked),
// already-admitted requests complete and their replies are delivered,
// and only then are workers, connection threads, and the batcher's
// flusher joined — so run() returns with every per-thread metrics shard
// retired and the final --metrics-out snapshot complete.
//
// Request lifecycle spans: serve.accept (parse + admission),
// serve.queue (admission -> dequeue, recorded cross-thread),
// serve.infer (prepare + batched scoring), serve.batch (one CNN batch
// flush, in the batcher), serve.reply (serialize + send).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/serve/batcher.hpp"
#include "sevuldet/serve/protocol.hpp"
#include "sevuldet/util/socket.hpp"

namespace sevuldet::serve {

struct ServeOptions {
  std::string socket_path;
  int threads = 1;          // request workers == batch scoring threads
  int queue_depth = 64;     // admission queue bound -> queue_full beyond
  int max_batch = 32;       // MicroBatcher flush size
  double batch_window_ms = 2.0;
  double default_deadline_ms = 30000.0;  // for requests without one
  std::size_t max_frame_bytes = util::kDefaultMaxFrameBytes;
  int accept_timeout_ms = 100;  // accept/readability poll granularity —
                                // bounds shutdown latency
  int recv_timeout_ms = 30000;  // mid-frame stall bound per connection
  /// Forward precision for every scan this daemon serves. Applied to the
  /// detector's model before the batcher clones it, so all scoring
  /// clones inherit it. fp32 replies are byte-identical to in-process
  /// scans; fp16/int8 trade bounded score drift for throughput.
  models::Precision precision = models::Precision::kFp32;
};

class Server {
 public:
  /// The detector must be trained (model loaded); the reference must
  /// outlive the server.
  Server(core::SeVulDet& detector, ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and serve until a shutdown request (or
  /// request_shutdown()). Returns only after the admission queue has
  /// drained and every thread this server started has been joined.
  /// Throws SocketError if the socket cannot be bound.
  void run();

  /// Ask a running run() to stop (thread-safe; idempotent). New scans
  /// are rejected with shutting_down immediately; run() returns after
  /// the drain.
  void request_shutdown();

  /// The report-status payload: request/error counts, queue and batcher
  /// stats, thread and connection counts.
  std::string status_json() const;

  const ServeOptions& options() const { return options_; }

 private:
  struct Job {
    Request request;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;
    std::promise<Response> promise;
  };

  void worker_loop();
  void handle_connection(util::UnixStream stream);
  Response process(Job& job);

  core::SeVulDet& detector_;
  ServeOptions options_;
  MicroBatcher batcher_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool draining_ = false;  // workers: finish the queue, then exit

  std::atomic<bool> accepting_{true};   // admission gate for new scans
  std::atomic<bool> stop_{false};       // acceptor exit
  std::atomic<bool> conn_stop_{false};  // connection threads exit

  std::vector<std::thread> workers_;
  std::mutex conns_mu_;
  std::vector<std::thread> conns_;

  std::atomic<long long> requests_scan_{0};
  std::atomic<long long> requests_explain_{0};
  std::atomic<long long> requests_scan_tree_{0};
  std::atomic<long long> requests_status_{0};
  std::atomic<long long> requests_shutdown_{0};
  std::atomic<long long> errors_{0};
  std::atomic<long long> connections_total_{0};
  std::atomic<int> connections_active_{0};
  std::atomic<int> queue_peak_{0};
};

}  // namespace sevuldet::serve
