// The `sevuldet serve` daemon core: a Unix-domain-socket server that
// loads the model once and answers scan / explain / report-status /
// shutdown requests (serve/protocol.hpp) over checksummed frames
// (util/socket.hpp).
//
// Threading model:
//
//   acceptor (run())          one per-connection thread per client
//   ─ accept loop ──────────▶ ─ recv frame ─ parse ─ admit ─┐
//                                                           ▼
//                             bounded admission queue (queue_depth)
//                                                           │
//   worker threads (threads)  ◀─ dequeue ── deadline check ─┘
//   ─ prepare() ─ MicroBatcher::predict_many() ─ findings ─▶ promise
//                                                           │
//   connection thread         ◀─ future ── send reply ──────┘
//
// Gadget scoring funnels through one MicroBatcher, so concurrent
// requests' gadgets coalesce into shared CNN batches. Admission is
// bounded: a full queue yields a typed queue_full error instead of
// unbounded buffering. Every request carries a deadline (its own
// deadline_ms or the server default), checked at dequeue and again
// after inference — exceeding it yields a typed deadline_exceeded
// error, never a silent slow reply.
//
// Shutdown (the `shutdown` op or request_shutdown()) is a drain, not an
// abort: the ack is sent, the listener closes (socket file unlinked),
// already-admitted requests complete and their replies are delivered,
// and only then are workers, connection threads, and the batcher's
// flusher joined — so run() returns with every per-thread metrics shard
// retired and the final --metrics-out snapshot complete.
//
// Request lifecycle spans: serve.accept (parse + admission),
// serve.queue (admission -> dequeue, recorded cross-thread),
// serve.infer (prepare + batched scoring), serve.batch (one CNN batch
// flush, in the batcher), serve.reply (serialize + send).
//
// Live telemetry (ServeOptions::telemetry): the `metrics` op answers
// with the registry (JSON snapshot or Prometheus text) plus a bounded
// resource-sample history ring filled by a snapshotter thread
// (telemetry.snapshot span; proc.rss_bytes / proc.cpu_*_seconds /
// proc.open_fds / serve.queue_depth gauges). Every request gets a
// trace_id (client-propagated or server-generated), echoed in the
// response, written to the structured access log (one schema-v1 JSON
// line per request through a rotating file sink), and stamped into the
// args of tail-sampled slow-request trace dumps
// (serve.slowtrace.captured counts them). The metrics op is handled
// inline on the connection thread — like report-status — so scrapes
// keep working when the admission queue is full.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <cstdint>
#include <memory>

#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/serve/batcher.hpp"
#include "sevuldet/serve/protocol.hpp"
#include "sevuldet/serve/telemetry.hpp"
#include "sevuldet/util/log.hpp"
#include "sevuldet/util/socket.hpp"

namespace sevuldet::serve {

struct ServeOptions {
  std::string socket_path;
  int threads = 1;          // request workers == batch scoring threads
  int queue_depth = 64;     // admission queue bound -> queue_full beyond
  int max_batch = 32;       // MicroBatcher flush size
  double batch_window_ms = 2.0;
  double default_deadline_ms = 30000.0;  // for requests without one
  std::size_t max_frame_bytes = util::kDefaultMaxFrameBytes;
  int accept_timeout_ms = 100;  // accept/readability poll granularity —
                                // bounds shutdown latency
  int recv_timeout_ms = 30000;  // mid-frame stall bound per connection
  /// Forward precision for every scan this daemon serves. Applied to the
  /// detector's model before the batcher clones it, so all scoring
  /// clones inherit it. fp32 replies are byte-identical to in-process
  /// scans; fp16/int8 trade bounded score drift for throughput.
  models::Precision precision = models::Precision::kFp32;

  /// Live telemetry plane (PR 10). Off by default so embedded servers
  /// (tests, benches) keep the registry exactly as they configured it;
  /// the `sevuldet serve` CLI turns it on unless --no-telemetry.
  /// When on: run() enables the metrics registry, starts the resource
  /// snapshotter thread (proc.* gauges + the history ring served by the
  /// `metrics` op), generates a trace_id per request, and — when the
  /// paths below are set — writes access-log lines and slow-trace
  /// dumps.
  bool telemetry = false;
  double telemetry_interval_ms = 1000.0;  // snapshotter period
  int history_capacity = 300;             // resource-ring bound (~5 min)
  /// Structured access log: one schema-v1 JSON line per finished
  /// request, size-rotated. Empty path = no access log.
  std::string access_log_path;
  std::size_t access_log_max_bytes = 8u << 20;
  int access_log_max_files = 4;
  /// Tail-based slow-request tracing: requests slower than this get a
  /// Chrome-trace dump (trace_id in span args) into slow_trace_dir,
  /// bounded at slow_trace_max_files. <0 disables; 0 captures every
  /// request (the CI forced-slow probe). Requires telemetry.
  double slow_trace_ms = -1.0;
  std::string slow_trace_dir;
  int slow_trace_max_files = 16;
};

class Server {
 public:
  /// The detector must be trained (model loaded); the reference must
  /// outlive the server.
  Server(core::SeVulDet& detector, ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and serve until a shutdown request (or
  /// request_shutdown()). Returns only after the admission queue has
  /// drained and every thread this server started has been joined.
  /// Throws SocketError if the socket cannot be bound.
  void run();

  /// Ask a running run() to stop (thread-safe; idempotent). New scans
  /// are rejected with shutting_down immediately; run() returns after
  /// the drain.
  void request_shutdown();

  /// The report-status payload: request/error counts, queue and batcher
  /// stats, thread and connection counts.
  std::string status_json() const;

  const ServeOptions& options() const { return options_; }

  /// The `metrics` op payload: {"format":..., "metrics": <registry
  /// snapshot> | "exposition": "<prometheus text>", "history":[...]}.
  std::string metrics_json(const std::string& format, int history) const;

 private:
  /// Worker-measured timings handed back to the connection thread
  /// through the Job (the promise/future pair orders the writes): queue
  /// wait, inference time, and gadgets scored, for the access log.
  struct RequestTiming {
    double queue_ms = 0.0;
    double infer_ms = 0.0;
    int batch_size = 0;
  };

  struct Job {
    Request request;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;
    std::promise<Response> promise;
    RequestTiming* timing = nullptr;  // connection-thread stack slot
  };

  void worker_loop();
  void handle_connection(util::UnixStream stream);
  Response process(Job& job);
  void snapshot_loop();
  void take_resource_sample();
  std::string next_trace_id();
  void finish_request(const char* op_label, const Response& response,
                      const RequestTiming& timing, std::size_t request_bytes,
                      std::size_t response_bytes, double total_ms);

  core::SeVulDet& detector_;
  ServeOptions options_;
  MicroBatcher batcher_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool draining_ = false;  // workers: finish the queue, then exit

  std::atomic<bool> accepting_{true};   // admission gate for new scans
  std::atomic<bool> stop_{false};       // acceptor exit
  std::atomic<bool> conn_stop_{false};  // connection threads exit

  std::vector<std::thread> workers_;
  std::mutex conns_mu_;
  std::vector<std::thread> conns_;

  std::atomic<long long> requests_scan_{0};
  std::atomic<long long> requests_explain_{0};
  std::atomic<long long> requests_scan_tree_{0};
  std::atomic<long long> requests_status_{0};
  std::atomic<long long> requests_metrics_{0};
  std::atomic<long long> requests_shutdown_{0};
  std::atomic<long long> errors_{0};
  std::atomic<long long> connections_total_{0};
  std::atomic<int> connections_active_{0};
  std::atomic<int> queue_peak_{0};
  std::atomic<long long> requests_total_{0};  // all ops, for QPS deltas

  // Telemetry plane (all null / idle when options_.telemetry is off).
  std::unique_ptr<telemetry::SampleRing> ring_;
  std::unique_ptr<util::RotatingFileSink> access_log_;
  std::unique_ptr<telemetry::SlowTraceWriter> slow_traces_;
  std::atomic<std::uint64_t> trace_seq_{0};
  std::thread snapshotter_;
  std::mutex snapshot_mu_;
  std::condition_variable snapshot_cv_;
  bool snapshot_stop_ = false;
  std::string precision_name_;  // cached for access-log lines
  std::string backend_name_;
};

}  // namespace sevuldet::serve
