// Client side of the serve protocol: connect to a daemon's socket,
// exchange one framed JSON request for one framed JSON response. Used
// by `sevuldet scan --daemon`, the serve tests, and bench/micro_serve.
//
// connect() returns nullopt when nobody is listening (stale socket file
// or no daemon), which is the client-mode probe: the CLI falls back to
// an in-process scan instead of failing. A typed error response
// (queue_full, deadline_exceeded, ...) is surfaced as a DaemonError
// carrying the ErrorCode, so callers can distinguish backpressure from
// hard failures.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sevuldet/serve/protocol.hpp"
#include "sevuldet/util/socket.hpp"

namespace sevuldet::serve {

/// A daemon replied with a typed error response.
class DaemonError : public std::runtime_error {
 public:
  DaemonError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + message),
        code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

class Client {
 public:
  /// Connect to a daemon at `socket_path`. Returns nullopt when no
  /// daemon is listening there; throws SocketError on other failures.
  static std::optional<Client> connect(const std::string& socket_path);

  /// One request -> one response over the connection. Throws
  /// FrameError/SocketError on transport failure and runtime_error when
  /// the daemon closes without replying. Does NOT throw on a typed
  /// error response — callers that want findings use scan().
  Response roundtrip(Request request, int timeout_ms = 60000);

  /// Scan (or explain) `source`; returns the daemon's findings — byte-
  /// identical to an in-process detect() with the same options. Throws
  /// DaemonError on a typed error response. `deadline_ms` < 0 uses the
  /// server default.
  /// `trace_id` (optional) propagates a client-chosen request ID into
  /// the daemon's access log and slow-trace dumps.
  std::vector<core::Finding> scan(const std::string& source, int top_k = 10,
                                  bool explain = false,
                                  double deadline_ms = -1.0,
                                  int timeout_ms = 60000,
                                  const std::string& trace_id = std::string());

  /// Directory scan through the daemon: the server runs the same
  /// parallel scan frontend as an in-process core::scan_tree, so the
  /// returned tree (findings, drop counters, stats) is identical to one
  /// produced locally. Tree scans can be long — the default deadline
  /// and timeout are generous. Throws DaemonError on a typed error.
  core::TreeScanResult scan_tree(const std::string& root, int top_k = 10,
                                 double deadline_ms = 300000.0,
                                 int timeout_ms = 300000);

  /// The daemon's status object as raw JSON.
  std::string report_status(int timeout_ms = 60000);

  /// The daemon's live metrics payload as raw JSON:
  /// {"format":..., "metrics":{...}|"exposition":"...", "history":[..]}.
  /// `format` is "json" or "prometheus"; `history` asks for that many
  /// trailing resource-ring samples. Note the returned JSON is the
  /// parse_response re-emission (keys sorted).
  std::string metrics(const std::string& format = "json", int history = 0,
                      int timeout_ms = 60000);

  /// Ask the daemon to drain and exit; returns once the ack arrives.
  void shutdown(int timeout_ms = 60000);

  void close() { stream_.close(); }

 private:
  explicit Client(util::UnixStream stream) : stream_(std::move(stream)) {}

  util::UnixStream stream_;
  std::int64_t next_id_ = 1;
};

}  // namespace sevuldet::serve
