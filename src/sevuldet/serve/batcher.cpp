#include "sevuldet/serve/batcher.hpp"

#include <algorithm>
#include <stdexcept>

#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::serve {

MicroBatcher::MicroBatcher(const models::Detector& model,
                           BatcherOptions options)
    : options_(options), pool_(std::max(1, options.threads)) {
  options_.max_batch = std::max(1, options_.max_batch);
  options_.window_ms = std::max(0.0, options_.window_ms);
  clones_.reserve(static_cast<std::size_t>(pool_.size()));
  for (int i = 0; i < pool_.size(); ++i) {
    clones_.push_back(model.clone());
  }
  flusher_ = std::thread([this] { flusher_loop(); });
}

MicroBatcher::~MicroBatcher() { stop(); }

void MicroBatcher::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      // Already stopped (or stopping); just make sure the thread is gone.
    }
    stopping_ = true;
  }
  pending_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

models::Prediction MicroBatcher::predict(const std::vector<int>& ids,
                                         bool capture_spatial) {
  std::vector<models::Prediction> results = predict_many({&ids}, capture_spatial);
  return std::move(results.front());
}

std::vector<models::Prediction> MicroBatcher::predict_many(
    const std::vector<const std::vector<int>*>& ids, bool capture_spatial) {
  std::vector<models::BatchItem> items;
  items.reserve(ids.size());
  for (const std::vector<int>* gadget : ids) {
    items.push_back({gadget, capture_spatial, nullptr});
  }
  return predict_many(items);
}

std::vector<models::Prediction> MicroBatcher::predict_many(
    const std::vector<models::BatchItem>& items) {
  if (items.empty()) return {};
  std::vector<Entry> entries(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    entries[i].item = items[i];
  }
  {
    std::unique_lock lock(mu_);
    if (stopping_) throw std::logic_error("MicroBatcher::predict after stop");
    if (pending_.empty()) {
      oldest_pending_ = std::chrono::steady_clock::now();
    }
    for (Entry& entry : entries) pending_.push_back(&entry);
  }
  pending_cv_.notify_one();
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [&] {
    for (const Entry& entry : entries) {
      if (!entry.done) return false;
    }
    return true;
  });
  std::vector<models::Prediction> results;
  results.reserve(entries.size());
  for (Entry& entry : entries) {
    if (entry.error) std::rethrow_exception(entry.error);
    results.push_back(std::move(entry.result));
  }
  return results;
}

void MicroBatcher::flusher_loop() {
  std::vector<Entry*> batch;
  std::unique_lock lock(mu_);
  for (;;) {
    pending_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stopping_) return;  // drained — predict() after stop() throws
      continue;
    }
    // Give the batch a chance to fill: wait until max_batch entries are
    // pending or the oldest one has waited window_ms. Draining skips the
    // wait so shutdown never sleeps on the window.
    if (!stopping_ && static_cast<int>(pending_.size()) < options_.max_batch) {
      const auto deadline =
          oldest_pending_ +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(options_.window_ms));
      pending_cv_.wait_until(lock, deadline, [&] {
        return stopping_ ||
               static_cast<int>(pending_.size()) >= options_.max_batch;
      });
    }
    // Take at most max_batch entries, oldest first; later entries stay
    // queued and restart the window.
    const std::size_t take =
        std::min(pending_.size(), static_cast<std::size_t>(options_.max_batch));
    if (take == static_cast<std::size_t>(options_.max_batch)) ++full_flushes_;
    batch.assign(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(take));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(take));
    if (!pending_.empty()) oldest_pending_ = std::chrono::steady_clock::now();
    ++batches_;
    gadgets_ += static_cast<long long>(take);
    lock.unlock();  // score outside mu_ so new submissions keep queueing
    run_batch(batch);
    lock.lock();
  }
}

void MicroBatcher::run_batch(std::vector<Entry*>& batch) {
  util::trace::ScopedSpan span("serve.batch");
  util::metrics::counter_add("serve.batch.flushes");
  util::metrics::counter_add("serve.batch.gadgets",
                             static_cast<long long>(batch.size()));
  // Score outside mu_ so new submissions queue up behind this batch.
  // parallel_chunks gives each ThreadPool worker a contiguous slice and
  // its own clone; a pool of size 1 runs inline on this thread. Each
  // chunk is scored with one length-bucketed predict_batch call —
  // bitwise-identical to the old per-entry predict_captured loop at
  // fp32. If the batched call throws (e.g. an out-of-range token id),
  // the chunk is rescored one entry at a time so a bad gadget only
  // fails its own entry, exactly as before.
  auto score_range = [&](models::Detector& model, std::size_t begin,
                         std::size_t end) {
    std::vector<models::BatchItem> items;
    items.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      items.push_back(batch[i]->item);
    }
    std::vector<models::Prediction> predictions(items.size());
    try {
      model.predict_batch(items.data(), items.size(), predictions.data());
      for (std::size_t i = begin; i < end; ++i) {
        batch[i]->result = std::move(predictions[i - begin]);
      }
      return;
    } catch (...) {
    }
    for (std::size_t i = begin; i < end; ++i) {
      try {
        model.predict_batch(&items[i - begin], 1, predictions.data());
        batch[i]->result = std::move(predictions[0]);
      } catch (...) {
        batch[i]->error = std::current_exception();
      }
    }
  };
  if (pool_.size() > 1 && batch.size() > 1) {
    pool_.parallel_chunks(batch.size(), [&](int worker, std::size_t begin,
                                            std::size_t end) {
      score_range(*clones_[static_cast<std::size_t>(worker)], begin, end);
    });
  } else {
    score_range(*clones_[0], 0, batch.size());
  }
  {
    std::lock_guard lock(mu_);
    for (Entry* entry : batch) entry->done = true;
  }
  done_cv_.notify_all();
}

long long MicroBatcher::batches_flushed() const {
  std::lock_guard lock(const_cast<std::mutex&>(mu_));
  return batches_;
}

long long MicroBatcher::gadgets_scored() const {
  std::lock_guard lock(const_cast<std::mutex&>(mu_));
  return gadgets_;
}

long long MicroBatcher::full_flushes() const {
  std::lock_guard lock(const_cast<std::mutex&>(mu_));
  return full_flushes_;
}

std::size_t MicroBatcher::arena_high_water_bytes() const {
  std::size_t total = 0;
  for (const auto& clone : clones_) total += clone->scratch_bytes();
  return total;
}

}  // namespace sevuldet::serve
