// Live telemetry primitives for the serve daemon: process resource
// sampling into a bounded time-series ring (served by the `metrics`
// op's history field), schema-versioned JSON access-log records, and a
// bounded on-disk writer for tail-sampled slow-request traces.
//
// Everything here is passive plumbing — the policy (sampling interval,
// slow threshold, file bounds) lives in ServeOptions; the server's
// snapshotter thread and request path drive these types.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sevuldet::serve::telemetry {

/// One point of the daemon's resource time series. All fields are
/// gauges at sample time except `requests`, which is the cumulative
/// request count — clients (sevuldet top) difference consecutive
/// samples to derive QPS without having to poll twice.
struct ResourceSample {
  double unix_seconds = 0.0;      // wall clock, seconds since the epoch
  double rss_bytes = 0.0;         // resident set size
  double cpu_user_seconds = 0.0;  // cumulative user CPU (getrusage)
  double cpu_sys_seconds = 0.0;   // cumulative system CPU
  double open_fds = 0.0;          // /proc/self/fd entry count
  double queue_depth = 0.0;       // admission queue depth at sample time
  long long requests = 0;         // cumulative serve.requests
};

/// Sample the process: RSS from /proc/self/statm, CPU from getrusage,
/// open fds from /proc/self/fd (Linux; zero on other platforms), plus
/// the caller-supplied queue depth and cumulative request count.
ResourceSample sample_process(double queue_depth, long long requests);

/// Fixed-capacity ring of resource samples; push overwrites the oldest
/// once full. Thread-safe: the snapshotter pushes while connection
/// threads serve history reads.
class SampleRing {
 public:
  explicit SampleRing(std::size_t capacity);

  void push(const ResourceSample& sample);

  /// The most recent min(n, size) samples, oldest first.
  std::vector<ResourceSample> last(std::size_t n) const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::vector<ResourceSample> buffer_;
  std::size_t capacity_;
  std::size_t next_ = 0;   // write position
  std::size_t count_ = 0;  // total stored (saturates at capacity_)
};

/// JSON array of samples (each an object with the ResourceSample field
/// names), oldest first. Embedded in the `metrics` op response.
std::string samples_to_json(const std::vector<ResourceSample>& samples);

/// One access-log record: everything the daemon knows about a finished
/// request. Serialized as a single JSON line (schema_version 1) so the
/// log is greppable and machine-parseable without a framing parser.
struct AccessRecord {
  std::string trace_id;        // server-generated or client-propagated
  std::string op;              // wire op name ("scan", "metrics", ...)
  double unix_seconds = 0.0;   // completion wall-clock time
  long long request_bytes = 0;
  long long response_bytes = 0;
  double queue_ms = 0.0;       // admission -> dequeue (0 for inline ops)
  double infer_ms = 0.0;       // prepare + batched scoring
  double total_ms = 0.0;       // receive -> reply sent
  int batch_size = 0;          // gadgets scored for this request
  std::string precision;       // serve precision (fp32/fp16/int8)
  std::string backend;         // detector backend name
  std::string error;           // wire error code, empty on success
};

/// {"schema_version":1,"trace_id":...,...} — one line, no newline.
std::string access_record_to_json(const AccessRecord& record);

/// Tail-sampling slow-request trace writer: capture() renders a small
/// Chrome trace_event JSON for one slow request (span tree with the
/// trace_id in every event's args) into `dir`, keeping at most
/// `max_files` files by writing into a slot ring (slow-<k>.json,
/// k = captures % max_files) — bounded disk no matter how many requests
/// cross the threshold. Thread-safe.
class SlowTraceWriter {
 public:
  SlowTraceWriter(std::string dir, int max_files);

  /// One span of the request timeline; times are milliseconds relative
  /// to request receipt.
  struct Span {
    const char* name;
    double start_ms;
    double dur_ms;
  };

  /// Write the trace file for `record`; returns the path written, or
  /// empty when the directory is not writable. Never throws.
  std::string capture(const AccessRecord& record,
                      const std::vector<Span>& spans);

  long long captured() const;

 private:
  mutable std::mutex mutex_;
  std::string dir_;
  int max_files_;
  long long captured_ = 0;
};

/// Render the slow-trace JSON document (exposed for tests).
std::string slow_trace_json(const AccessRecord& record,
                            const std::vector<SlowTraceWriter::Span>& spans);

/// Server-generated request IDs: "<pid-hex>-<seq>". Monotonic per
/// process, unique across daemon restarts on one machine in practice.
std::string make_trace_id(std::uint64_t sequence);

}  // namespace sevuldet::serve::telemetry
