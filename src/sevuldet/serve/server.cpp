#include "sevuldet/serve/server.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sevuldet/util/json.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::serve {

namespace {

std::chrono::steady_clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Apply the serve precision to the model before MicroBatcher clones it
/// (member-init order: the batcher is constructed right after options_).
models::Detector& with_precision(models::Detector& model,
                                 models::Precision precision) {
  if (model.precision() != precision) model.set_precision(precision);
  return model;
}

}  // namespace

Server::Server(core::SeVulDet& detector, ServeOptions options)
    : detector_(detector),
      options_(std::move(options)),
      batcher_(with_precision(detector.model(), options_.precision),
               BatcherOptions{std::max(1, options_.max_batch),
                              std::max(0.0, options_.batch_window_ms),
                              std::max(1, options_.threads)}) {
  options_.threads = std::max(1, options_.threads);
  options_.queue_depth = std::max(1, options_.queue_depth);
}

Server::~Server() { batcher_.stop(); }

void Server::request_shutdown() {
  accepting_ = false;
  stop_ = true;
}

void Server::run() {
  if (!detector_.trained()) {
    throw std::runtime_error("serve: detector has no model loaded");
  }
  util::UnixListener listener = util::UnixListener::bind(options_.socket_path);
  workers_.reserve(static_cast<std::size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  while (!stop_) {
    std::optional<util::UnixStream> peer =
        listener.accept(options_.accept_timeout_ms);
    if (!peer.has_value()) continue;
    ++connections_total_;
    ++connections_active_;
    util::metrics::counter_add("serve.connections");
    std::lock_guard lock(conns_mu_);
    conns_.emplace_back([this, stream = std::move(*peer)]() mutable {
      handle_connection(std::move(stream));
    });
  }
  // Drain, in dependency order: stop accepting connections (and unlink
  // the socket file), let the workers finish every admitted request,
  // then release the connection threads (each blocked reply future has
  // resolved by now), then the batcher's flusher. Joining everything
  // here is what makes the post-run() metrics snapshot complete: every
  // per-thread shard retires before the caller writes --metrics-out.
  listener.close();
  {
    std::lock_guard lock(queue_mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  conn_stop_ = true;
  {
    std::lock_guard lock(conns_mu_);
    for (std::thread& conn : conns_) conn.join();
    conns_.clear();
  }
  batcher_.stop();
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (draining_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    util::trace::record_span("serve.queue", job.enqueued,
                             std::chrono::steady_clock::now());
    job.promise.set_value(process(job));
  }
}

Response Server::process(Job& job) {
  if (std::chrono::steady_clock::now() >= job.deadline) {
    return error_response(job.request.id, ErrorCode::DeadlineExceeded,
                          "deadline exceeded while queued");
  }
  try {
    if (job.request.op == Op::ScanTree) {
      // Directory scans reuse the exact parallel frontend the CLI runs
      // in-process (core::scan_tree), so findings and drop counters are
      // identical through either path. They bypass the cross-request
      // micro-batcher: the tree scan batches per file already.
      util::trace::ScopedSpan span("serve.scan_tree");
      core::ScanOptions scan_options;
      scan_options.detect.top_k = job.request.top_k;
      scan_options.detect.precision = options_.precision;
      scan_options.threads = options_.threads;
      core::TreeScanResult tree =
          core::scan_tree(detector_, job.request.root, scan_options);
      if (std::chrono::steady_clock::now() >= job.deadline) {
        return error_response(job.request.id, ErrorCode::DeadlineExceeded,
                              "deadline exceeded during tree scan");
      }
      return status_response(job.request.id, tree_scan_to_json(tree));
    }
    util::trace::ScopedSpan span("serve.infer");
    const bool explain = job.request.op == Op::Explain;
    core::DetectOptions detect_options;
    detect_options.top_k = job.request.top_k;
    detect_options.explain = explain;
    std::vector<core::PreparedGadget> prepared =
        detector_.prepare(job.request.source);
    std::vector<models::BatchItem> items;
    items.reserve(prepared.size());
    for (const core::PreparedGadget& gadget : prepared) {
      items.push_back({&gadget.ids, explain, &gadget.graph});
    }
    std::vector<models::Prediction> predictions =
        batcher_.predict_many(items);
    std::vector<core::Finding> findings;
    for (std::size_t i = 0; i < prepared.size(); ++i) {
      std::optional<core::Finding> finding = detector_.finding_from_prediction(
          prepared[i], predictions[i], detect_options);
      if (finding.has_value()) findings.push_back(std::move(*finding));
    }
    core::SeVulDet::sort_findings(findings);
    if (std::chrono::steady_clock::now() >= job.deadline) {
      return error_response(job.request.id, ErrorCode::DeadlineExceeded,
                            "deadline exceeded during inference");
    }
    return findings_response(job.request.id, std::move(findings));
  } catch (const std::exception& e) {
    return error_response(job.request.id, ErrorCode::Internal, e.what());
  }
}

void Server::handle_connection(util::UnixStream stream) {
  while (!conn_stop_) {
    if (!stream.wait_readable(options_.accept_timeout_ms)) continue;
    std::optional<std::string> payload;
    try {
      payload = stream.recv_frame(options_.max_frame_bytes,
                                  options_.recv_timeout_ms);
    } catch (const util::FrameError& e) {
      // A malformed frame means the stream is desynchronized: name the
      // defect in a typed error, then close — never resynchronize by
      // guessing.
      util::metrics::counter_add("serve.errors.bad_frame");
      ++errors_;
      try {
        stream.send_frame(response_to_json(error_response(
                              0, ErrorCode::BadRequest,
                              std::string("bad frame: ") + e.what())),
                          options_.max_frame_bytes);
      } catch (...) {
        // Peer already gone; nothing to report to.
      }
      break;
    } catch (const util::SocketError&) {
      break;
    }
    if (!payload.has_value()) break;  // clean EOF: client hung up

    const auto received = std::chrono::steady_clock::now();
    Response response;
    std::future<Response> pending;
    bool queued = false;
    bool shutdown_after_reply = false;
    {
      util::trace::ScopedSpan span("serve.accept");
      std::optional<Request> request;
      try {
        request = parse_request(*payload);
      } catch (const std::exception& e) {
        response = error_response(0, ErrorCode::BadRequest, e.what());
      }
      if (request.has_value()) {
        switch (request->op) {
          case Op::ReportStatus:
            ++requests_status_;
            response = status_response(request->id, status_json());
            break;
          case Op::Shutdown:
            ++requests_shutdown_;
            response = ok_response(request->id);
            shutdown_after_reply = true;
            break;
          case Op::Scan:
          case Op::Explain:
          case Op::ScanTree: {
            if (request->op == Op::Scan) {
              ++requests_scan_;
            } else if (request->op == Op::Explain) {
              ++requests_explain_;
            } else {
              ++requests_scan_tree_;
            }
            if (!accepting_) {
              response = error_response(request->id, ErrorCode::ShuttingDown,
                                        "daemon is shutting down");
              break;
            }
            Job job;
            job.request = std::move(*request);
            job.enqueued = received;
            const double budget = job.request.deadline_ms >= 0.0
                                      ? job.request.deadline_ms
                                      : options_.default_deadline_ms;
            job.deadline = received + ms_duration(budget);
            pending = job.promise.get_future();
            const std::int64_t id = job.request.id;
            bool admitted = false;
            {
              std::lock_guard lock(queue_mu_);
              if (!draining_ &&
                  static_cast<int>(queue_.size()) < options_.queue_depth) {
                queue_.push_back(std::move(job));
                const int depth = static_cast<int>(queue_.size());
                if (depth > queue_peak_.load()) queue_peak_.store(depth);
                admitted = true;
              }
            }
            if (admitted) {
              queue_cv_.notify_one();
              queued = true;
            } else {
              response = error_response(
                  id, ErrorCode::QueueFull,
                  "admission queue full (depth " +
                      std::to_string(options_.queue_depth) + ")");
            }
            break;
          }
        }
      }
    }
    if (queued) response = pending.get();
    util::metrics::counter_add("serve.requests");
    if (response.error.has_value()) {
      ++errors_;
      util::metrics::counter_add(std::string("serve.errors.") +
                                 error_code_name(response.error->code));
    }
    try {
      util::trace::ScopedSpan span("serve.reply");
      stream.send_frame(response_to_json(response), options_.max_frame_bytes);
    } catch (...) {
      break;  // peer vanished mid-reply
    }
    util::metrics::observe_ms("serve.request_ms", ms_since(received));
    if (shutdown_after_reply) {
      request_shutdown();
      break;
    }
  }
  stream.close();
  --connections_active_;
}

std::string Server::status_json() const {
  namespace json = util::json;
  std::size_t depth = 0;
  {
    std::lock_guard lock(queue_mu_);
    depth = queue_.size();
  }
  std::string out;
  out += "{\"requests\":{\"scan\":";
  json::append_number(out, static_cast<double>(requests_scan_.load()));
  out += ",\"explain\":";
  json::append_number(out, static_cast<double>(requests_explain_.load()));
  out += ",\"scan-tree\":";
  json::append_number(out, static_cast<double>(requests_scan_tree_.load()));
  out += ",\"report-status\":";
  json::append_number(out, static_cast<double>(requests_status_.load()));
  out += ",\"shutdown\":";
  json::append_number(out, static_cast<double>(requests_shutdown_.load()));
  out += "},\"errors\":";
  json::append_number(out, static_cast<double>(errors_.load()));
  out += ",\"queue\":{\"depth\":";
  json::append_number(out, static_cast<double>(depth));
  out += ",\"limit\":";
  json::append_number(out, options_.queue_depth);
  out += ",\"peak\":";
  json::append_number(out, queue_peak_.load());
  out += "},\"batcher\":{\"batches\":";
  json::append_number(out, static_cast<double>(batcher_.batches_flushed()));
  out += ",\"gadgets\":";
  json::append_number(out, static_cast<double>(batcher_.gadgets_scored()));
  out += ",\"full_flushes\":";
  json::append_number(out, static_cast<double>(batcher_.full_flushes()));
  out += ",\"arena_high_water_bytes\":";
  json::append_number(out,
                      static_cast<double>(batcher_.arena_high_water_bytes()));
  out += "},\"threads\":";
  json::append_number(out, options_.threads);
  out += ",\"connections\":{\"active\":";
  json::append_number(out, connections_active_.load());
  out += ",\"total\":";
  json::append_number(out, static_cast<double>(connections_total_.load()));
  out += "}}";
  return out;
}

}  // namespace sevuldet::serve
