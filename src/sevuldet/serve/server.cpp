#include "sevuldet/serve/server.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sevuldet/util/json.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/metrics_export.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::serve {

namespace {

std::chrono::steady_clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Apply the serve precision to the model before MicroBatcher clones it
/// (member-init order: the batcher is constructed right after options_).
models::Detector& with_precision(models::Detector& model,
                                 models::Precision precision) {
  if (model.precision() != precision) model.set_precision(precision);
  return model;
}

}  // namespace

Server::Server(core::SeVulDet& detector, ServeOptions options)
    : detector_(detector),
      options_(std::move(options)),
      batcher_(with_precision(detector.model(), options_.precision),
               BatcherOptions{std::max(1, options_.max_batch),
                              std::max(0.0, options_.batch_window_ms),
                              std::max(1, options_.threads)}) {
  options_.threads = std::max(1, options_.threads);
  options_.queue_depth = std::max(1, options_.queue_depth);
  precision_name_ = models::precision_name(options_.precision);
  backend_name_ = detector_.model().name();
  if (options_.telemetry) {
    ring_ = std::make_unique<telemetry::SampleRing>(
        static_cast<std::size_t>(std::max(1, options_.history_capacity)));
    if (!options_.access_log_path.empty()) {
      access_log_ = std::make_unique<util::RotatingFileSink>(
          options_.access_log_path, options_.access_log_max_bytes,
          options_.access_log_max_files);
    }
    if (options_.slow_trace_ms >= 0.0 && !options_.slow_trace_dir.empty()) {
      slow_traces_ = std::make_unique<telemetry::SlowTraceWriter>(
          options_.slow_trace_dir, options_.slow_trace_max_files);
    }
  }
}

Server::~Server() { batcher_.stop(); }

void Server::request_shutdown() {
  accepting_ = false;
  stop_ = true;
}

void Server::run() {
  if (!detector_.trained()) {
    throw std::runtime_error("serve: detector has no model loaded");
  }
  util::UnixListener listener = util::UnixListener::bind(options_.socket_path);
  if (options_.telemetry) {
    // The live plane needs the registry on; pre-register the counters a
    // scraper expects so the first exposition already carries them at 0
    // (check_metrics.py's monotonicity check differences two scrapes).
    util::metrics::set_enabled(true);
    util::metrics::counter_add("serve.connections", 0);
    util::metrics::counter_add("serve.requests", 0);
    util::metrics::counter_add("serve.slowtrace.captured", 0);
    {
      std::lock_guard lock(snapshot_mu_);
      snapshot_stop_ = false;
    }
    take_resource_sample();  // ring and proc.* gauges are never empty
    snapshotter_ = std::thread([this] { snapshot_loop(); });
  }
  workers_.reserve(static_cast<std::size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  while (!stop_) {
    std::optional<util::UnixStream> peer =
        listener.accept(options_.accept_timeout_ms);
    if (!peer.has_value()) continue;
    ++connections_total_;
    ++connections_active_;
    util::metrics::counter_add("serve.connections");
    std::lock_guard lock(conns_mu_);
    conns_.emplace_back([this, stream = std::move(*peer)]() mutable {
      handle_connection(std::move(stream));
    });
  }
  // Drain, in dependency order: stop accepting connections (and unlink
  // the socket file), let the workers finish every admitted request,
  // then release the connection threads (each blocked reply future has
  // resolved by now), then the batcher's flusher. Joining everything
  // here is what makes the post-run() metrics snapshot complete: every
  // per-thread shard retires before the caller writes --metrics-out.
  listener.close();
  {
    std::lock_guard lock(queue_mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  conn_stop_ = true;
  {
    std::lock_guard lock(conns_mu_);
    for (std::thread& conn : conns_) conn.join();
    conns_.clear();
  }
  if (snapshotter_.joinable()) {
    take_resource_sample();  // final point: last gauges reflect the drain
    {
      std::lock_guard lock(snapshot_mu_);
      snapshot_stop_ = true;
    }
    snapshot_cv_.notify_all();
    snapshotter_.join();
  }
  batcher_.stop();
  if (access_log_ != nullptr) access_log_->flush();
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (draining_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto dequeued = std::chrono::steady_clock::now();
    util::trace::record_span("serve.queue", job.enqueued, dequeued);
    if (job.timing != nullptr) {
      job.timing->queue_ms =
          std::chrono::duration<double, std::milli>(dequeued - job.enqueued)
              .count();
    }
    job.promise.set_value(process(job));
  }
}

Response Server::process(Job& job) {
  if (std::chrono::steady_clock::now() >= job.deadline) {
    return error_response(job.request.id, ErrorCode::DeadlineExceeded,
                          "deadline exceeded while queued");
  }
  try {
    if (job.request.op == Op::ScanTree) {
      // Directory scans reuse the exact parallel frontend the CLI runs
      // in-process (core::scan_tree), so findings and drop counters are
      // identical through either path. They bypass the cross-request
      // micro-batcher: the tree scan batches per file already.
      util::trace::ScopedSpan span("serve.scan_tree");
      const auto infer_start = std::chrono::steady_clock::now();
      core::ScanOptions scan_options;
      scan_options.detect.top_k = job.request.top_k;
      scan_options.detect.precision = options_.precision;
      scan_options.threads = options_.threads;
      core::TreeScanResult tree =
          core::scan_tree(detector_, job.request.root, scan_options);
      if (job.timing != nullptr) job.timing->infer_ms = ms_since(infer_start);
      if (std::chrono::steady_clock::now() >= job.deadline) {
        return error_response(job.request.id, ErrorCode::DeadlineExceeded,
                              "deadline exceeded during tree scan");
      }
      return status_response(job.request.id, tree_scan_to_json(tree));
    }
    util::trace::ScopedSpan span("serve.infer");
    const auto infer_start = std::chrono::steady_clock::now();
    const bool explain = job.request.op == Op::Explain;
    core::DetectOptions detect_options;
    detect_options.top_k = job.request.top_k;
    detect_options.explain = explain;
    std::vector<core::PreparedGadget> prepared =
        detector_.prepare(job.request.source);
    std::vector<models::BatchItem> items;
    items.reserve(prepared.size());
    for (const core::PreparedGadget& gadget : prepared) {
      items.push_back({&gadget.ids, explain, &gadget.graph});
    }
    std::vector<models::Prediction> predictions =
        batcher_.predict_many(items);
    if (job.timing != nullptr) {
      job.timing->infer_ms = ms_since(infer_start);
      job.timing->batch_size = static_cast<int>(prepared.size());
    }
    std::vector<core::Finding> findings;
    for (std::size_t i = 0; i < prepared.size(); ++i) {
      std::optional<core::Finding> finding = detector_.finding_from_prediction(
          prepared[i], predictions[i], detect_options);
      if (finding.has_value()) findings.push_back(std::move(*finding));
    }
    core::SeVulDet::sort_findings(findings);
    if (std::chrono::steady_clock::now() >= job.deadline) {
      return error_response(job.request.id, ErrorCode::DeadlineExceeded,
                            "deadline exceeded during inference");
    }
    return findings_response(job.request.id, std::move(findings));
  } catch (const std::exception& e) {
    return error_response(job.request.id, ErrorCode::Internal, e.what());
  }
}

void Server::handle_connection(util::UnixStream stream) {
  while (!conn_stop_) {
    if (!stream.wait_readable(options_.accept_timeout_ms)) continue;
    std::optional<std::string> payload;
    try {
      payload = stream.recv_frame(options_.max_frame_bytes,
                                  options_.recv_timeout_ms);
    } catch (const util::FrameError& e) {
      // A malformed frame means the stream is desynchronized: name the
      // defect in a typed error, then close — never resynchronize by
      // guessing.
      util::metrics::counter_add("serve.errors.bad_frame");
      ++errors_;
      try {
        stream.send_frame(response_to_json(error_response(
                              0, ErrorCode::BadRequest,
                              std::string("bad frame: ") + e.what())),
                          options_.max_frame_bytes);
      } catch (...) {
        // Peer already gone; nothing to report to.
      }
      break;
    } catch (const util::SocketError&) {
      break;
    }
    if (!payload.has_value()) break;  // clean EOF: client hung up

    const auto received = std::chrono::steady_clock::now();
    Response response;
    RequestTiming timing;
    std::string trace_id;
    const char* op_label = "?";
    std::future<Response> pending;
    bool queued = false;
    bool shutdown_after_reply = false;
    std::optional<Request> request;
    {
      util::trace::ScopedSpan span("serve.accept");
      try {
        request = parse_request(*payload);
      } catch (const std::exception& e) {
        response = error_response(0, ErrorCode::BadRequest, e.what());
      }
      if (request.has_value()) {
        // Resolve the request ID up front (the scan path moves the
        // request into its Job): propagate the client's, otherwise
        // mint one when the telemetry plane is on.
        op_label = op_name(request->op);
        trace_id = request->trace_id;
      }
      if (trace_id.empty() && options_.telemetry) trace_id = next_trace_id();
      if (request.has_value()) {
        switch (request->op) {
          case Op::ReportStatus:
            ++requests_status_;
            response = status_response(request->id, status_json());
            break;
          case Op::Metrics: {
            // Served inline on the connection thread — like
            // report-status — so a scrape works even when the admission
            // queue is full or the daemon is draining.
            util::trace::ScopedSpan export_span("serve.export");
            ++requests_metrics_;
            response = status_response(
                request->id, metrics_json(request->format, request->history));
            break;
          }
          case Op::Shutdown:
            ++requests_shutdown_;
            response = ok_response(request->id);
            shutdown_after_reply = true;
            break;
          case Op::Scan:
          case Op::Explain:
          case Op::ScanTree: {
            if (request->op == Op::Scan) {
              ++requests_scan_;
            } else if (request->op == Op::Explain) {
              ++requests_explain_;
            } else {
              ++requests_scan_tree_;
            }
            if (!accepting_) {
              response = error_response(request->id, ErrorCode::ShuttingDown,
                                        "daemon is shutting down");
              break;
            }
            Job job;
            job.request = std::move(*request);
            job.timing = &timing;
            job.enqueued = received;
            const double budget = job.request.deadline_ms >= 0.0
                                      ? job.request.deadline_ms
                                      : options_.default_deadline_ms;
            job.deadline = received + ms_duration(budget);
            pending = job.promise.get_future();
            const std::int64_t id = job.request.id;
            bool admitted = false;
            {
              std::lock_guard lock(queue_mu_);
              if (!draining_ &&
                  static_cast<int>(queue_.size()) < options_.queue_depth) {
                queue_.push_back(std::move(job));
                const int depth = static_cast<int>(queue_.size());
                if (depth > queue_peak_.load()) queue_peak_.store(depth);
                admitted = true;
              }
            }
            if (admitted) {
              queue_cv_.notify_one();
              queued = true;
            } else {
              response = error_response(
                  id, ErrorCode::QueueFull,
                  "admission queue full (depth " +
                      std::to_string(options_.queue_depth) + ")");
            }
            break;
          }
        }
      }
    }
    if (queued) response = pending.get();
    response.trace_id = trace_id;
    util::metrics::counter_add("serve.requests");
    ++requests_total_;
    if (response.error.has_value()) {
      ++errors_;
      util::metrics::counter_add(std::string("serve.errors.") +
                                 error_code_name(response.error->code));
    }
    const std::string reply = response_to_json(response);
    try {
      util::trace::ScopedSpan span("serve.reply");
      stream.send_frame(reply, options_.max_frame_bytes);
    } catch (...) {
      break;  // peer vanished mid-reply
    }
    const double total_ms = ms_since(received);
    util::metrics::observe_ms("serve.request_ms", total_ms);
    finish_request(op_label, response, timing, payload->size(), reply.size(),
                   total_ms);
    if (shutdown_after_reply) {
      request_shutdown();
      break;
    }
  }
  stream.close();
  --connections_active_;
}

void Server::snapshot_loop() {
  std::unique_lock lock(snapshot_mu_);
  while (!snapshot_stop_) {
    const bool stopped = snapshot_cv_.wait_for(
        lock, ms_duration(options_.telemetry_interval_ms),
        [&] { return snapshot_stop_; });
    if (stopped) return;
    lock.unlock();
    take_resource_sample();
    lock.lock();
  }
}

void Server::take_resource_sample() {
  util::trace::ScopedSpan span("telemetry.snapshot");
  std::size_t depth = 0;
  {
    std::lock_guard lock(queue_mu_);
    depth = queue_.size();
  }
  const telemetry::ResourceSample sample = telemetry::sample_process(
      static_cast<double>(depth), requests_total_.load());
  ring_->push(sample);
  util::metrics::gauge_set("proc.rss_bytes", sample.rss_bytes);
  util::metrics::gauge_set("proc.cpu_user_seconds", sample.cpu_user_seconds);
  util::metrics::gauge_set("proc.cpu_sys_seconds", sample.cpu_sys_seconds);
  util::metrics::gauge_set("proc.open_fds", sample.open_fds);
  util::metrics::gauge_set("serve.queue_depth", sample.queue_depth);
}

std::string Server::next_trace_id() {
  return telemetry::make_trace_id(
      trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
}

std::string Server::metrics_json(const std::string& format,
                                 int history) const {
  namespace json = util::json;
  std::string out;
  out += "{\"format\":";
  json::append_string(out, format);
  if (format == "prometheus") {
    out += ",\"exposition\":";
    json::append_string(out, util::metrics::to_prometheus());
  } else {
    out += ",\"metrics\":";
    out += util::metrics::to_json();
  }
  out += ",\"history\":";
  std::vector<telemetry::ResourceSample> samples;
  if (ring_ != nullptr && history > 0) {
    samples = ring_->last(static_cast<std::size_t>(history));
  }
  out += telemetry::samples_to_json(samples);
  out += '}';
  return out;
}

void Server::finish_request(const char* op_label, const Response& response,
                            const RequestTiming& timing,
                            std::size_t request_bytes,
                            std::size_t response_bytes, double total_ms) {
  if (!options_.telemetry) return;
  // Only data-plane requests are tail-traced: a metrics scrape or
  // shutdown ack crossing the threshold is control-plane noise, and the
  // CI forced-slow probe (--slow-trace-ms 0 + one scan) relies on
  // exactly one capture per scan.
  const bool data_plane = std::strcmp(op_label, "scan") == 0 ||
                          std::strcmp(op_label, "explain") == 0 ||
                          std::strcmp(op_label, "scan-tree") == 0;
  const bool slow = data_plane && slow_traces_ != nullptr &&
                    options_.slow_trace_ms >= 0.0 &&
                    total_ms >= options_.slow_trace_ms;
  if (access_log_ == nullptr && !slow) return;
  telemetry::AccessRecord record;
  record.trace_id = response.trace_id;
  record.op = op_label;
  record.unix_seconds = std::chrono::duration<double>(
                            std::chrono::system_clock::now().time_since_epoch())
                            .count();
  record.request_bytes = static_cast<long long>(request_bytes);
  record.response_bytes = static_cast<long long>(response_bytes);
  record.queue_ms = timing.queue_ms;
  record.infer_ms = timing.infer_ms;
  record.total_ms = total_ms;
  record.batch_size = timing.batch_size;
  record.precision = precision_name_;
  record.backend = backend_name_;
  if (response.error.has_value()) {
    record.error = error_code_name(response.error->code);
  }
  if (access_log_ != nullptr) {
    // Slow requests flush through to disk immediately so their log line
    // is on disk alongside the trace dump even if the daemon dies next.
    access_log_->append_line(telemetry::access_record_to_json(record), slow);
  }
  if (slow) {
    std::vector<telemetry::SlowTraceWriter::Span> spans;
    if (timing.queue_ms > 0.0) {
      spans.push_back({"serve.queue", 0.0, timing.queue_ms});
    }
    if (timing.infer_ms > 0.0) {
      spans.push_back({"serve.infer", timing.queue_ms, timing.infer_ms});
    }
    if (!slow_traces_->capture(record, spans).empty()) {
      util::metrics::counter_add("serve.slowtrace.captured");
    }
  }
}

std::string Server::status_json() const {
  namespace json = util::json;
  std::size_t depth = 0;
  {
    std::lock_guard lock(queue_mu_);
    depth = queue_.size();
  }
  std::string out;
  out += "{\"requests\":{\"scan\":";
  json::append_number(out, static_cast<double>(requests_scan_.load()));
  out += ",\"explain\":";
  json::append_number(out, static_cast<double>(requests_explain_.load()));
  out += ",\"scan-tree\":";
  json::append_number(out, static_cast<double>(requests_scan_tree_.load()));
  out += ",\"report-status\":";
  json::append_number(out, static_cast<double>(requests_status_.load()));
  out += ",\"metrics\":";
  json::append_number(out, static_cast<double>(requests_metrics_.load()));
  out += ",\"shutdown\":";
  json::append_number(out, static_cast<double>(requests_shutdown_.load()));
  out += "},\"errors\":";
  json::append_number(out, static_cast<double>(errors_.load()));
  out += ",\"queue\":{\"depth\":";
  json::append_number(out, static_cast<double>(depth));
  out += ",\"limit\":";
  json::append_number(out, options_.queue_depth);
  out += ",\"peak\":";
  json::append_number(out, queue_peak_.load());
  out += "},\"batcher\":{\"batches\":";
  json::append_number(out, static_cast<double>(batcher_.batches_flushed()));
  out += ",\"gadgets\":";
  json::append_number(out, static_cast<double>(batcher_.gadgets_scored()));
  out += ",\"full_flushes\":";
  json::append_number(out, static_cast<double>(batcher_.full_flushes()));
  out += ",\"arena_high_water_bytes\":";
  json::append_number(out,
                      static_cast<double>(batcher_.arena_high_water_bytes()));
  out += "},\"threads\":";
  json::append_number(out, options_.threads);
  out += ",\"connections\":{\"active\":";
  json::append_number(out, connections_active_.load());
  out += ",\"total\":";
  json::append_number(out, static_cast<double>(connections_total_.load()));
  out += "}}";
  return out;
}

}  // namespace sevuldet::serve
