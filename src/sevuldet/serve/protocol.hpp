// Wire protocol of the `sevuldet serve` daemon: length-prefixed frames
// (util/socket.hpp) carrying one JSON document each, one request frame
// answered by exactly one response frame, in order, per connection.
//
// Request:
//   { "op": "scan" | "explain" | "scan-tree" | "report-status"
//           | "metrics" | "shutdown",
//     "id": <client-chosen number, echoed back>,
//     "source": "<C translation unit>",        // scan/explain
//     "root": "<directory to scan>",           // scan-tree
//     "top_k": 10,                             // optional
//     "deadline_ms": 10000,                    // optional, 0 = already due
//     "trace_id": "req-1",                     // optional request ID
//     "format": "json" | "prometheus",         // metrics
//     "history": 60 }                          // metrics: ring samples
//
// Success response:
//   { "id": n, "ok": true, "findings": [...] }          // scan/explain
//   { "id": n, "ok": true, "status": {...} }            // report-status
//   { "id": n, "ok": true, "status": {...tree...} }     // scan-tree
//   { "id": n, "ok": true, "status": {"format":...,     // metrics
//       "metrics": {...} | "exposition": "...",
//       "history": [...]} }
//   { "id": n, "ok": true }                             // shutdown
//
// Every response from a telemetry-era daemon also carries "trace_id":
// the request's ID (client-propagated or server-generated) that joins
// the reply to its access-log line and any slow-trace dump.
//
// scan-tree replies carry the tree_scan_to_json() document in the
// status slot; Client::scan_tree parses it back to a TreeScanResult
// with tree_scan_from_json(), a lossless round-trip — so re-serializing
// the client's copy is byte-identical to an in-process scan_tree().
//
// Error response (typed):
//   { "id": n, "ok": false,
//     "error": { "code": "deadline_exceeded", "message": "..." } }
//
// Findings serialize through findings_to_json(); parsing one back with
// findings_from_json() is lossless (floats are emitted with %.17g), so
// `findings_to_json(findings_from_json(x)) == x` — the property the
// byte-identical daemon-vs-in-process tests and the serve-gate CI job
// are built on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/core/scan.hpp"

namespace sevuldet::serve {

enum class Op { Scan, Explain, ScanTree, ReportStatus, Metrics, Shutdown };

const char* op_name(Op op);

/// Typed error codes a response can carry. Stable wire spellings
/// (error_code_name) — clients dispatch on these, not on messages.
enum class ErrorCode {
  BadRequest,       // unparseable JSON / missing fields / unknown op
  QueueFull,        // admission queue at configured depth
  DeadlineExceeded, // request deadline passed before completion
  ShuttingDown,     // daemon is draining; no new work accepted
  Internal,         // unexpected exception while serving
};

const char* error_code_name(ErrorCode code);
std::optional<ErrorCode> error_code_from_name(const std::string& name);

struct Request {
  Op op = Op::Scan;
  std::int64_t id = 0;
  std::string source;        // scan/explain payload
  std::string root;          // scan-tree payload: directory to scan
  int top_k = 10;
  /// Budget for the whole request, measured from the daemon's receipt.
  /// <0 selects the server default; 0 is "already due" (rejected at
  /// admission — the deterministic deadline test relies on this).
  double deadline_ms = -1.0;
  /// Optional client-chosen request ID, echoed in the response and
  /// attached to the daemon's access-log line and slow-trace dump for
  /// this request. When empty the server generates one.
  std::string trace_id;
  /// Metrics op only: exposition format, "json" (default — the raw
  /// registry snapshot document) or "prometheus" (text exposition).
  std::string format = "json";
  /// Metrics op only: number of trailing resource-ring samples to
  /// include in the response (0 = none, capped by the server's ring).
  int history = 0;
};

struct ErrorInfo {
  ErrorCode code = ErrorCode::Internal;
  std::string message;
};

struct Response {
  std::int64_t id = 0;
  bool ok = false;
  std::vector<core::Finding> findings;  // scan/explain
  std::string status_json;              // report-status: raw "status" object
  std::optional<ErrorInfo> error;
  /// Request ID this response answers (client-propagated or
  /// server-generated); empty from daemons predating the telemetry op.
  std::string trace_id;
};

/// Request <-> JSON. parse_request throws std::runtime_error on
/// malformed JSON or a semantically invalid document (unknown op,
/// missing source) — the server maps that to a BadRequest response.
std::string request_to_json(const Request& request);
Request parse_request(const std::string& json);

/// Findings <-> JSON array. The serializer is the canonical spelling of
/// a scan result: every Finding field (including top_tokens and the
/// explain-only attributions/spatial map) round-trips exactly.
std::string findings_to_json(const std::vector<core::Finding>& findings);
std::vector<core::Finding> findings_from_json_array(const std::string& json);

/// TreeScanResult <-> JSON: the canonical spelling of a directory scan
/// (per-file findings + frontend drop accounting + tree aggregates).
/// Lossless both ways — the daemon parity contract compares
/// tree_scan_to_json() strings from the two paths byte for byte.
std::string tree_scan_to_json(const core::TreeScanResult& tree);
core::TreeScanResult tree_scan_from_json(const std::string& json);

/// Response <-> JSON.
std::string response_to_json(const Response& response);
Response parse_response(const std::string& json);

/// Convenience builders.
Response ok_response(std::int64_t id);
Response findings_response(std::int64_t id, std::vector<core::Finding> findings);
Response status_response(std::int64_t id, std::string status_json);
Response error_response(std::int64_t id, ErrorCode code, std::string message);

}  // namespace sevuldet::serve
