#include "sevuldet/serve/protocol.hpp"

#include <stdexcept>

#include "sevuldet/slicer/special_tokens.hpp"
#include "sevuldet/util/json.hpp"
#include "sevuldet/util/mini_json.hpp"

namespace sevuldet::serve {

namespace json = util::json;
using util::mini_json::Parser;
using util::mini_json::Value;

const char* op_name(Op op) {
  switch (op) {
    case Op::Scan: return "scan";
    case Op::Explain: return "explain";
    case Op::ScanTree: return "scan-tree";
    case Op::ReportStatus: return "report-status";
    case Op::Metrics: return "metrics";
    case Op::Shutdown: return "shutdown";
  }
  return "?";
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::QueueFull: return "queue_full";
    case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::ShuttingDown: return "shutting_down";
    case ErrorCode::Internal: return "internal";
  }
  return "?";
}

std::optional<ErrorCode> error_code_from_name(const std::string& name) {
  if (name == "bad_request") return ErrorCode::BadRequest;
  if (name == "queue_full") return ErrorCode::QueueFull;
  if (name == "deadline_exceeded") return ErrorCode::DeadlineExceeded;
  if (name == "shutting_down") return ErrorCode::ShuttingDown;
  if (name == "internal") return ErrorCode::Internal;
  return std::nullopt;
}

namespace {

std::optional<Op> op_from_name(const std::string& name) {
  if (name == "scan") return Op::Scan;
  if (name == "explain") return Op::Explain;
  if (name == "scan-tree") return Op::ScanTree;
  if (name == "report-status") return Op::ReportStatus;
  if (name == "metrics") return Op::Metrics;
  if (name == "shutdown") return Op::Shutdown;
  return std::nullopt;
}

void append_float_array(std::string& out, const std::vector<float>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    json::append_number(out, static_cast<double>(values[i]));
  }
  out += ']';
}

std::vector<float> parse_float_array(const Value& value) {
  std::vector<float> out;
  out.reserve(value.array.size());
  for (const Value& v : value.array) out.push_back(static_cast<float>(v.number));
  return out;
}

void append_finding(std::string& out, const core::Finding& finding) {
  out += "{\"function\":";
  json::append_string(out, finding.function);
  out += ",\"line\":";
  json::append_number(out, finding.line);
  out += ",\"category\":";
  json::append_string(out, slicer::category_name(finding.category));
  out += ",\"token\":";
  json::append_string(out, finding.token);
  out += ",\"probability\":";
  json::append_number(out, static_cast<double>(finding.probability));
  out += ",\"top_tokens\":[";
  for (std::size_t i = 0; i < finding.top_tokens.size(); ++i) {
    if (i != 0) out += ',';
    out += '[';
    json::append_string(out, finding.top_tokens[i].first);
    out += ',';
    json::append_number(out, static_cast<double>(finding.top_tokens[i].second));
    out += ']';
  }
  out += "],\"attributions\":[";
  for (std::size_t i = 0; i < finding.attributions.size(); ++i) {
    const core::TokenAttribution& a = finding.attributions[i];
    if (i != 0) out += ',';
    out += "{\"token\":";
    json::append_string(out, a.token);
    out += ",\"original\":";
    json::append_string(out, a.original);
    out += ",\"function\":";
    json::append_string(out, a.function);
    out += ",\"line\":";
    json::append_number(out, a.line);
    out += ",\"weight\":";
    json::append_number(out, static_cast<double>(a.weight));
    out += '}';
  }
  out += "],\"spatial_attention\":";
  append_float_array(out, finding.spatial_attention);
  out += '}';
}

core::Finding parse_finding(const Value& value) {
  core::Finding finding;
  finding.function = value.at("function").str;
  finding.line = static_cast<int>(value.at("line").number);
  finding.category = slicer::category_from_name(value.at("category").str);
  finding.token = value.at("token").str;
  finding.probability = static_cast<float>(value.at("probability").number);
  for (const Value& pair : value.at("top_tokens").array) {
    finding.top_tokens.emplace_back(pair.at(0).str,
                                    static_cast<float>(pair.at(1).number));
  }
  for (const Value& attr : value.at("attributions").array) {
    core::TokenAttribution a;
    a.token = attr.at("token").str;
    a.original = attr.at("original").str;
    a.function = attr.at("function").str;
    a.line = static_cast<int>(attr.at("line").number);
    a.weight = static_cast<float>(attr.at("weight").number);
    finding.attributions.push_back(std::move(a));
  }
  finding.spatial_attention = parse_float_array(value.at("spatial_attention"));
  return finding;
}

// Re-emit a parsed Value as JSON (keys sorted — mini_json objects are
// std::map). Used to carry the report-status object through
// parse_response without a raw-text slice of the input.
void append_value(std::string& out, const Value& value) {
  switch (value.type) {
    case Value::Type::Null: out += "null"; break;
    case Value::Type::Bool: out += value.boolean ? "true" : "false"; break;
    case Value::Type::Number: json::append_number(out, value.number); break;
    case Value::Type::String: json::append_string(out, value.str); break;
    case Value::Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        if (i != 0) out += ',';
        append_value(out, value.array[i]);
      }
      out += ']';
      break;
    }
    case Value::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.object) {
        if (!first) out += ',';
        first = false;
        json::append_string(out, key);
        out += ':';
        append_value(out, member);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string findings_to_json(const std::vector<core::Finding>& findings) {
  std::string out;
  out.reserve(256 * findings.size() + 2);
  out += '[';
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i != 0) out += ',';
    append_finding(out, findings[i]);
  }
  out += ']';
  return out;
}

std::vector<core::Finding> findings_from_json_array(const std::string& text) {
  Value doc = Parser(text).parse();
  if (doc.type != Value::Type::Array) {
    throw std::runtime_error("findings: expected a JSON array");
  }
  std::vector<core::Finding> findings;
  findings.reserve(doc.array.size());
  for (const Value& v : doc.array) findings.push_back(parse_finding(v));
  return findings;
}

std::string tree_scan_to_json(const core::TreeScanResult& tree) {
  std::string out;
  out.reserve(512 + 512 * tree.files.size());
  out += "{\"root\":";
  json::append_string(out, tree.root);
  out += ",\"files\":[";
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    const core::FileScanResult& file = tree.files[i];
    const core::FileScanStats& s = file.stats;
    if (i != 0) out += ',';
    out += "{\"path\":";
    json::append_string(out, file.path);
    out += ",\"ok\":";
    out += file.ok ? "true" : "false";
    out += ",\"error\":";
    json::append_string(out, file.error);
    out += ",\"findings\":";
    out += findings_to_json(file.findings);
    out += ",\"stats\":{\"preprocessed\":";
    out += s.preprocessed ? "true" : "false";
    out += ",\"parse_clean\":";
    out += s.parse_clean ? "true" : "false";
    out += ",\"chunks_total\":";
    json::append_number(out, s.chunks_total);
    out += ",\"chunks_recovered\":";
    json::append_number(out, s.chunks_recovered);
    out += ",\"lost_regions\":";
    json::append_number(out, s.lost_regions);
    out += ",\"lines_total\":";
    json::append_number(out, s.lines_total);
    out += ",\"lines_lost\":";
    json::append_number(out, s.lines_lost);
    out += ",\"fallback_gadgets\":";
    json::append_number(out, s.fallback_gadgets);
    out += ",\"fallback_findings\":";
    json::append_number(out, s.fallback_findings);
    out += ",\"findings_dropped_include\":";
    json::append_number(out, s.findings_dropped_include);
    out += ",\"includes_resolved\":";
    json::append_number(out, s.preprocess.includes_resolved);
    out += ",\"includes_unresolved\":";
    json::append_number(out, s.preprocess.includes_unresolved);
    out += ",\"include_cycles\":";
    json::append_number(out, s.preprocess.include_cycles);
    out += ",\"macros_defined\":";
    json::append_number(out, s.preprocess.macros_defined);
    out += ",\"macro_expansions\":";
    json::append_number(out, s.preprocess.macro_expansions);
    out += ",\"conditionals\":";
    json::append_number(out, s.preprocess.conditionals);
    out += ",\"unresolved_conditionals\":";
    json::append_number(out, s.preprocess.unresolved_conditionals);
    out += ",\"lines_dropped\":";
    json::append_number(out, s.preprocess.lines_dropped);
    out += "}}";
  }
  const core::TreeScanStats& t = tree.stats;
  out += "],\"stats\":{\"files\":";
  json::append_number(out, t.files);
  out += ",\"files_failed\":";
  json::append_number(out, t.files_failed);
  out += ",\"files_recovered\":";
  json::append_number(out, t.files_recovered);
  out += ",\"bytes\":";
  json::append_number(out, static_cast<double>(t.bytes));
  out += ",\"findings\":";
  json::append_number(out, t.findings);
  out += ",\"fallback_findings\":";
  json::append_number(out, t.fallback_findings);
  out += ",\"lines_total\":";
  json::append_number(out, t.lines_total);
  out += ",\"lines_lost\":";
  json::append_number(out, t.lines_lost);
  out += ",\"includes_resolved\":";
  json::append_number(out, t.includes_resolved);
  out += ",\"includes_unresolved\":";
  json::append_number(out, t.includes_unresolved);
  out += ",\"macro_expansions\":";
  json::append_number(out, t.macro_expansions);
  out += ",\"conditionals\":";
  json::append_number(out, t.conditionals);
  out += ",\"unresolved_conditionals\":";
  json::append_number(out, t.unresolved_conditionals);
  out += ",\"parse_drop_rate\":";
  json::append_number(out, t.parse_drop_rate);
  out += ",\"preprocess_drop_rate\":";
  json::append_number(out, t.preprocess_drop_rate);
  out += "}}";
  return out;
}

core::TreeScanResult tree_scan_from_json(const std::string& text) {
  Value doc = Parser(text).parse();
  core::TreeScanResult tree;
  tree.root = doc.at("root").str;
  for (const Value& file_value : doc.at("files").array) {
    core::FileScanResult file;
    file.path = file_value.at("path").str;
    file.ok = file_value.at("ok").boolean;
    file.error = file_value.at("error").str;
    for (const Value& finding : file_value.at("findings").array) {
      file.findings.push_back(parse_finding(finding));
    }
    const Value& s = file_value.at("stats");
    auto num = [&s](const char* key) {
      return static_cast<int>(s.at(key).number);
    };
    file.stats.preprocessed = s.at("preprocessed").boolean;
    file.stats.parse_clean = s.at("parse_clean").boolean;
    file.stats.chunks_total = num("chunks_total");
    file.stats.chunks_recovered = num("chunks_recovered");
    file.stats.lost_regions = num("lost_regions");
    file.stats.lines_total = num("lines_total");
    file.stats.lines_lost = num("lines_lost");
    file.stats.fallback_gadgets = num("fallback_gadgets");
    file.stats.fallback_findings = num("fallback_findings");
    file.stats.findings_dropped_include = num("findings_dropped_include");
    file.stats.preprocess.includes_resolved = num("includes_resolved");
    file.stats.preprocess.includes_unresolved = num("includes_unresolved");
    file.stats.preprocess.include_cycles = num("include_cycles");
    file.stats.preprocess.macros_defined = num("macros_defined");
    file.stats.preprocess.macro_expansions = num("macro_expansions");
    file.stats.preprocess.conditionals = num("conditionals");
    file.stats.preprocess.unresolved_conditionals =
        num("unresolved_conditionals");
    file.stats.preprocess.lines_dropped = num("lines_dropped");
    tree.files.push_back(std::move(file));
  }
  const Value& t = doc.at("stats");
  auto num = [&t](const char* key) {
    return static_cast<int>(t.at(key).number);
  };
  tree.stats.files = num("files");
  tree.stats.files_failed = num("files_failed");
  tree.stats.files_recovered = num("files_recovered");
  tree.stats.bytes = static_cast<long long>(t.at("bytes").number);
  tree.stats.findings = num("findings");
  tree.stats.fallback_findings = num("fallback_findings");
  tree.stats.lines_total = num("lines_total");
  tree.stats.lines_lost = num("lines_lost");
  tree.stats.includes_resolved = num("includes_resolved");
  tree.stats.includes_unresolved = num("includes_unresolved");
  tree.stats.macro_expansions = num("macro_expansions");
  tree.stats.conditionals = num("conditionals");
  tree.stats.unresolved_conditionals = num("unresolved_conditionals");
  tree.stats.parse_drop_rate = t.at("parse_drop_rate").number;
  tree.stats.preprocess_drop_rate = t.at("preprocess_drop_rate").number;
  return tree;
}

std::string request_to_json(const Request& request) {
  std::string out;
  out += "{\"op\":";
  json::append_string(out, op_name(request.op));
  out += ",\"id\":";
  json::append_number(out, static_cast<double>(request.id));
  if (request.op == Op::Scan || request.op == Op::Explain) {
    out += ",\"source\":";
    json::append_string(out, request.source);
    out += ",\"top_k\":";
    json::append_number(out, request.top_k);
  }
  if (request.op == Op::ScanTree) {
    out += ",\"root\":";
    json::append_string(out, request.root);
    out += ",\"top_k\":";
    json::append_number(out, request.top_k);
  }
  if (request.op == Op::Metrics) {
    out += ",\"format\":";
    json::append_string(out, request.format);
    out += ",\"history\":";
    json::append_number(out, request.history);
  }
  if (request.deadline_ms >= 0.0) {
    out += ",\"deadline_ms\":";
    json::append_number(out, request.deadline_ms);
  }
  if (!request.trace_id.empty()) {
    out += ",\"trace_id\":";
    json::append_string(out, request.trace_id);
  }
  out += '}';
  return out;
}

Request parse_request(const std::string& text) {
  Value doc = Parser(text).parse();
  Request request;
  std::optional<Op> op = op_from_name(doc.at("op").str);
  if (!op.has_value()) {
    throw std::runtime_error("unknown op: " + doc.at("op").str);
  }
  request.op = *op;
  if (doc.has("id")) request.id = static_cast<std::int64_t>(doc.at("id").number);
  if (request.op == Op::Scan || request.op == Op::Explain) {
    request.source = doc.at("source").str;  // throws when missing
  }
  if (request.op == Op::ScanTree) {
    request.root = doc.at("root").str;  // throws when missing
    if (request.root.empty()) throw std::runtime_error("root must be non-empty");
  }
  if (request.op == Op::Scan || request.op == Op::Explain ||
      request.op == Op::ScanTree) {
    if (doc.has("top_k")) {
      request.top_k = static_cast<int>(doc.at("top_k").number);
      if (request.top_k < 0) throw std::runtime_error("top_k must be >= 0");
    }
  }
  if (request.op == Op::Metrics) {
    if (doc.has("format")) {
      request.format = doc.at("format").str;
      if (request.format != "json" && request.format != "prometheus") {
        throw std::runtime_error("unknown metrics format: " + request.format);
      }
    }
    if (doc.has("history")) {
      request.history = static_cast<int>(doc.at("history").number);
      if (request.history < 0) {
        throw std::runtime_error("history must be >= 0");
      }
    }
  }
  if (doc.has("deadline_ms")) {
    request.deadline_ms = doc.at("deadline_ms").number;
    if (request.deadline_ms < 0.0) {
      throw std::runtime_error("deadline_ms must be >= 0");
    }
  }
  if (doc.has("trace_id")) request.trace_id = doc.at("trace_id").str;
  return request;
}

std::string response_to_json(const Response& response) {
  std::string out;
  out += "{\"id\":";
  json::append_number(out, static_cast<double>(response.id));
  out += ",\"ok\":";
  out += response.ok ? "true" : "false";
  if (response.error.has_value()) {
    out += ",\"error\":{\"code\":";
    json::append_string(out, error_code_name(response.error->code));
    out += ",\"message\":";
    json::append_string(out, response.error->message);
    out += '}';
  } else if (!response.status_json.empty()) {
    out += ",\"status\":";
    out += response.status_json;
  } else if (response.ok) {
    out += ",\"findings\":";
    out += findings_to_json(response.findings);
  }
  if (!response.trace_id.empty()) {
    out += ",\"trace_id\":";
    json::append_string(out, response.trace_id);
  }
  out += '}';
  return out;
}

Response parse_response(const std::string& text) {
  Value doc = Parser(text).parse();
  Response response;
  response.id = static_cast<std::int64_t>(doc.at("id").number);
  response.ok = doc.at("ok").boolean;
  if (doc.has("error")) {
    const Value& err = doc.at("error");
    ErrorInfo info;
    std::optional<ErrorCode> code = error_code_from_name(err.at("code").str);
    if (!code.has_value()) {
      throw std::runtime_error("unknown error code: " + err.at("code").str);
    }
    info.code = *code;
    info.message = err.at("message").str;
    response.error = std::move(info);
  }
  if (doc.has("findings")) {
    for (const Value& v : doc.at("findings").array) {
      response.findings.push_back(parse_finding(v));
    }
  }
  if (doc.has("status")) {
    append_value(response.status_json, doc.at("status"));
  }
  if (doc.has("trace_id")) response.trace_id = doc.at("trace_id").str;
  return response;
}

Response ok_response(std::int64_t id) {
  Response response;
  response.id = id;
  response.ok = true;
  // An empty findings array would serialize for a shutdown ack too;
  // harmless, but keep the ack minimal.
  response.status_json = "{}";
  return response;
}

Response findings_response(std::int64_t id, std::vector<core::Finding> findings) {
  Response response;
  response.id = id;
  response.ok = true;
  response.findings = std::move(findings);
  return response;
}

Response status_response(std::int64_t id, std::string status_json) {
  Response response;
  response.id = id;
  response.ok = true;
  response.status_json = std::move(status_json);
  return response;
}

Response error_response(std::int64_t id, ErrorCode code, std::string message) {
  Response response;
  response.id = id;
  response.ok = false;
  response.error = ErrorInfo{code, std::move(message)};
  return response;
}

}  // namespace sevuldet::serve
