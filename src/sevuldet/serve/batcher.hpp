// Cross-request micro-batching in front of the CNN forward pass. Request
// workers submit encoded gadgets (token-id sequences) and block on the
// result; a dedicated flusher thread collects submissions into batches
// and scores each batch over the PR 1 ThreadPool with per-worker model
// clones, each running the length-bucketed predict_batch engine (scratch
// reuse — zero heap allocation per gadget after warmup). A batch flushes
// when it reaches
// `max_batch` entries or when its oldest entry has waited `window_ms`,
// whichever comes first, so a lone request never stalls behind an
// unfilled batch for long.
//
// Eval-mode forward passes are deterministic and per-gadget independent,
// so batched scores (and the captured attention weights) are identical
// to calling predict_captured() inline — serve_test asserts this
// bitwise. Batching buys throughput, not different numbers: the clones
// and their arenas are built once, and a burst of R requests × G gadgets
// costs one warm arena pass per gadget instead of R model-sized cache
// refills interleaved at request granularity.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sevuldet/models/model.hpp"
#include "sevuldet/util/thread_pool.hpp"

namespace sevuldet::serve {

struct BatcherOptions {
  int max_batch = 32;        // flush when this many gadgets are pending
  double window_ms = 2.0;    // ... or when the oldest has waited this long
  int threads = 1;           // ThreadPool width for scoring one batch
};

class MicroBatcher {
 public:
  /// Clones `model` once per inference thread (any Detector backend).
  /// The reference must stay valid for the batcher's lifetime (the
  /// Server owns both).
  MicroBatcher(const models::Detector& model, BatcherOptions options);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Score one gadget; blocks until its batch is flushed. Thread-safe.
  /// `ids` must stay valid until this returns (it is not copied).
  models::Prediction predict(const std::vector<int>& ids, bool capture_spatial);

  /// Score a request's gadgets in one submission: all entries join the
  /// pending batch together (one window wait for the whole request, and
  /// a request with >= max_batch gadgets flushes immediately), and the
  /// call blocks until every one is scored. Results are positional.
  /// Each item's pointed-to tokens/graph must stay valid until return.
  std::vector<models::Prediction> predict_many(
      const std::vector<models::BatchItem>& items);
  /// Token-only convenience (no gadget graphs attached).
  std::vector<models::Prediction> predict_many(
      const std::vector<const std::vector<int>*>& ids, bool capture_spatial);

  /// Stop the flusher after it drains every pending entry. Idempotent;
  /// the destructor calls it. predict() after stop() throws.
  void stop();

  // Counters for serve.report-status (monotonic, approximate reads).
  long long batches_flushed() const;
  long long gadgets_scored() const;
  long long full_flushes() const;  // flushed at max_batch (vs window/drain)
  /// Peak activation-scratch bytes across the inference clones — the
  /// daemon's steady-state inference memory footprint (the batched
  /// engine's recycled buffers; capacity only grows).
  std::size_t arena_high_water_bytes() const;

 private:
  struct Entry {
    models::BatchItem item;
    models::Prediction result;
    bool done = false;
    std::exception_ptr error;
  };

  void flusher_loop();
  void run_batch(std::vector<Entry*>& batch);

  BatcherOptions options_;
  util::ThreadPool pool_;
  std::vector<std::unique_ptr<models::Detector>> clones_;

  std::mutex mu_;
  std::condition_variable pending_cv_;  // wakes the flusher
  std::condition_variable done_cv_;     // wakes blocked predict() callers
  std::vector<Entry*> pending_;
  std::chrono::steady_clock::time_point oldest_pending_;
  bool stopping_ = false;

  long long batches_ = 0;
  long long gadgets_ = 0;
  long long full_flushes_ = 0;

  std::thread flusher_;
};

}  // namespace sevuldet::serve
