#include "sevuldet/serve/telemetry.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "sevuldet/util/json.hpp"

#ifdef __linux__
#include <dirent.h>
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace sevuldet::serve::telemetry {

namespace json = util::json;

namespace {

double now_unix_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

#ifdef __linux__
double read_rss_bytes() {
  std::FILE* statm = std::fopen("/proc/self/statm", "rb");
  if (statm == nullptr) return 0.0;
  long long pages_total = 0, pages_resident = 0;
  const int read = std::fscanf(statm, "%lld %lld", &pages_total,
                               &pages_resident);
  std::fclose(statm);
  if (read != 2) return 0.0;
  return static_cast<double>(pages_resident) *
         static_cast<double>(sysconf(_SC_PAGESIZE));
}

double count_open_fds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0.0;
  long long count = 0;
  while (const dirent* entry = readdir(dir)) {
    if (entry->d_name[0] == '.') continue;  // "." and ".."
    ++count;
  }
  closedir(dir);
  // The opendir fd itself is in the listing; don't count it.
  return static_cast<double>(count > 0 ? count - 1 : 0);
}
#endif

}  // namespace

ResourceSample sample_process(double queue_depth, long long requests) {
  ResourceSample sample;
  sample.unix_seconds = now_unix_seconds();
  sample.queue_depth = queue_depth;
  sample.requests = requests;
#ifdef __linux__
  sample.rss_bytes = read_rss_bytes();
  sample.open_fds = count_open_fds();
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    sample.cpu_user_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                              static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
    sample.cpu_sys_seconds = static_cast<double>(usage.ru_stime.tv_sec) +
                             static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
  }
#endif
  return sample;
}

SampleRing::SampleRing(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  buffer_.resize(capacity_);
}

void SampleRing::push(const ResourceSample& sample) {
  std::lock_guard lock(mutex_);
  buffer_[next_] = sample;
  next_ = (next_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
}

std::vector<ResourceSample> SampleRing::last(std::size_t n) const {
  std::lock_guard lock(mutex_);
  const std::size_t take = n < count_ ? n : count_;
  std::vector<ResourceSample> out;
  out.reserve(take);
  // next_ is one past the newest; walk back `take` slots, emit forward.
  const std::size_t start = (next_ + capacity_ - take) % capacity_;
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(buffer_[(start + i) % capacity_]);
  }
  return out;
}

std::size_t SampleRing::size() const {
  std::lock_guard lock(mutex_);
  return count_;
}

std::string samples_to_json(const std::vector<ResourceSample>& samples) {
  std::string out;
  out.reserve(128 * samples.size() + 2);
  out += '[';
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const ResourceSample& s = samples[i];
    if (i != 0) out += ',';
    out += "{\"unix_seconds\":";
    json::append_number(out, s.unix_seconds);
    out += ",\"rss_bytes\":";
    json::append_number(out, s.rss_bytes);
    out += ",\"cpu_user_seconds\":";
    json::append_number(out, s.cpu_user_seconds);
    out += ",\"cpu_sys_seconds\":";
    json::append_number(out, s.cpu_sys_seconds);
    out += ",\"open_fds\":";
    json::append_number(out, s.open_fds);
    out += ",\"queue_depth\":";
    json::append_number(out, s.queue_depth);
    out += ",\"requests\":";
    json::append_number(out, static_cast<double>(s.requests));
    out += '}';
  }
  out += ']';
  return out;
}

std::string access_record_to_json(const AccessRecord& record) {
  std::string out;
  out.reserve(256);
  out += "{\"schema_version\":1,\"trace_id\":";
  json::append_string(out, record.trace_id);
  out += ",\"op\":";
  json::append_string(out, record.op);
  out += ",\"unix_seconds\":";
  json::append_number(out, record.unix_seconds);
  out += ",\"request_bytes\":";
  json::append_number(out, static_cast<double>(record.request_bytes));
  out += ",\"response_bytes\":";
  json::append_number(out, static_cast<double>(record.response_bytes));
  out += ",\"queue_ms\":";
  json::append_number(out, record.queue_ms);
  out += ",\"infer_ms\":";
  json::append_number(out, record.infer_ms);
  out += ",\"total_ms\":";
  json::append_number(out, record.total_ms);
  out += ",\"batch_size\":";
  json::append_number(out, record.batch_size);
  out += ",\"precision\":";
  json::append_string(out, record.precision);
  out += ",\"backend\":";
  json::append_string(out, record.backend);
  out += ",\"error\":";
  json::append_string(out, record.error);
  out += '}';
  return out;
}

std::string slow_trace_json(const AccessRecord& record,
                            const std::vector<SlowTraceWriter::Span>& spans) {
  std::string out;
  out.reserve(512 + 160 * spans.size());
  out += "{\"schema_version\":1,\"displayTimeUnit\":\"ms\",\"trace_id\":";
  json::append_string(out, record.trace_id);
  out += ",\"traceEvents\":[";
  bool first = true;
  auto event = [&](const char* name, double start_ms, double dur_ms) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    json::append_string(out, name);
    out += ",\"cat\":\"serve\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":";
    json::append_number(out, start_ms * 1000.0);  // Chrome wants µs
    out += ",\"dur\":";
    json::append_number(out, dur_ms * 1000.0);
    out += ",\"args\":{\"trace_id\":";
    json::append_string(out, record.trace_id);
    out += ",\"op\":";
    json::append_string(out, record.op);
    if (!record.error.empty()) {
      out += ",\"error\":";
      json::append_string(out, record.error);
    }
    out += "}}";
  };
  event("serve.request", 0.0, record.total_ms);
  for (const SlowTraceWriter::Span& span : spans) {
    event(span.name, span.start_ms, span.dur_ms);
  }
  out += "]}";
  return out;
}

SlowTraceWriter::SlowTraceWriter(std::string dir, int max_files)
    : dir_(std::move(dir)), max_files_(max_files > 0 ? max_files : 1) {}

std::string SlowTraceWriter::capture(const AccessRecord& record,
                                     const std::vector<Span>& spans) {
  const std::string body = slow_trace_json(record, spans);
  std::lock_guard lock(mutex_);
  const long long slot = captured_ % max_files_;
  std::string path = dir_ + "/slow-" + std::to_string(slot) + ".json";
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return std::string();
  std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  ++captured_;
  return path;
}

long long SlowTraceWriter::captured() const {
  std::lock_guard lock(mutex_);
  return captured_;
}

std::string make_trace_id(std::uint64_t sequence) {
  std::uint64_t pid = 0;
#ifdef __linux__
  pid = static_cast<std::uint64_t>(getpid());
#endif
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%llx-%llu",
                static_cast<unsigned long long>(pid),
                static_cast<unsigned long long>(sequence));
  return buffer;
}

}  // namespace sevuldet::serve::telemetry
