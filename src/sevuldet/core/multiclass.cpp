#include "sevuldet/core/multiclass.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>

#include "sevuldet/nn/autograd.hpp"
#include "sevuldet/nn/optim.hpp"
#include "sevuldet/util/log.hpp"
#include "sevuldet/util/strings.hpp"

namespace sevuldet::core {

CweClassMap CweClassMap::from_samples(const SampleRefs& samples) {
  CweClassMap map;
  map.names_.push_back("benign");
  std::set<std::string> cwes;
  for (const auto* s : samples) {
    if (s->label == 1 && !s->cwe.empty()) cwes.insert(s->cwe);
  }
  for (const auto& cwe : cwes) {  // std::set iterates sorted -> stable ids
    map.class_by_cwe_[cwe] = static_cast<int>(map.names_.size());
    map.names_.push_back(cwe);
  }
  return map;
}

int CweClassMap::class_of(const dataset::GadgetSample& sample) const {
  if (sample.label != 1) return 0;
  return class_of_cwe(sample.cwe);
}

int CweClassMap::class_of_cwe(const std::string& cwe) const {
  auto it = class_by_cwe_.find(cwe);
  return it == class_by_cwe_.end() ? 0 : it->second;
}

const std::string& CweClassMap::name_of(int class_id) const {
  return names_.at(static_cast<std::size_t>(class_id));
}

TrainResult train_multiclass(models::Detector& detector, const SampleRefs& train,
                             const CweClassMap& classes,
                             const TrainConfig& config) {
  if (detector.config().num_classes != classes.num_classes()) {
    throw std::invalid_argument("train_multiclass: model has " +
                                std::to_string(detector.config().num_classes) +
                                " classes, map has " +
                                std::to_string(classes.num_classes()));
  }
  TrainResult result;
  result.samples = train.size();
  if (train.empty()) return result;

  float pos_weight = config.pos_weight;
  if (pos_weight <= 0.0f) {
    long long pos = 0;
    for (const auto* s : train) pos += s->label;
    const long long neg = static_cast<long long>(train.size()) - pos;
    pos_weight = pos == 0 ? 1.0f
                          : std::min(10.0f, static_cast<float>(neg) /
                                                static_cast<float>(std::max(1LL, pos)));
  }

  nn::Adam opt(detector.params(), config.lr);
  util::Rng shuffle_rng(config.seed);
  std::vector<std::size_t> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  nn::Graph graph;  // arena-backed autograd storage, reused per sample
  const auto start = std::chrono::steady_clock::now();
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double loss_sum = 0.0;
    for (std::size_t i : order) {
      const auto& sample = *train[i];
      if (sample.ids.empty()) continue;
      nn::GraphScope scope(graph);
      nn::NodePtr logits = detector.forward_logit(sample.ids, /*train=*/true);
      const int target = classes.class_of(sample);
      nn::NodePtr loss = nn::cross_entropy_with_logits(logits, target);
      if (target != 0 && pos_weight != 1.0f) loss = nn::scale(loss, pos_weight);
      loss_sum += loss->value.at(0, 0);
      opt.zero_grad();
      nn::backward(loss);
      opt.clip_grad_norm(config.grad_clip);
      opt.step();
    }
    const float mean_loss =
        static_cast<float>(loss_sum / static_cast<double>(train.size()));
    result.epoch_losses.push_back(mean_loss);
    if (config.verbose) {
      util::log_info(detector.name() + " [multiclass] epoch " +
                     std::to_string(epoch + 1) + "/" +
                     std::to_string(config.epochs) + " loss=" +
                     util::fmt(mean_loss, 4));
    }
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

MulticlassEval evaluate_multiclass(models::Detector& detector,
                                   const SampleRefs& test,
                                   const CweClassMap& classes) {
  const int n = classes.num_classes();
  MulticlassEval eval;
  eval.confusion.assign(static_cast<std::size_t>(n),
                        std::vector<long long>(static_cast<std::size_t>(n), 0));
  long long correct = 0, total = 0;
  nn::Graph graph;
  for (const auto* sample : test) {
    if (sample->ids.empty()) continue;
    nn::GraphScope scope(graph);
    const int truth = classes.class_of(*sample);
    const auto [predicted, prob] = detector.predict_class(sample->ids);
    (void)prob;
    ++eval.confusion[static_cast<std::size_t>(truth)][static_cast<std::size_t>(predicted)];
    if (truth == predicted) ++correct;
    ++total;
  }
  eval.accuracy = total == 0 ? 0.0 : static_cast<double>(correct) / total;

  eval.per_class_precision.resize(static_cast<std::size_t>(n));
  eval.per_class_recall.resize(static_cast<std::size_t>(n));
  eval.per_class_f1.resize(static_cast<std::size_t>(n));
  double f1_sum = 0.0;
  for (int c = 0; c < n; ++c) {
    long long tp = eval.confusion[static_cast<std::size_t>(c)][static_cast<std::size_t>(c)];
    long long pred_c = 0, truth_c = 0;
    for (int o = 0; o < n; ++o) {
      pred_c += eval.confusion[static_cast<std::size_t>(o)][static_cast<std::size_t>(c)];
      truth_c += eval.confusion[static_cast<std::size_t>(c)][static_cast<std::size_t>(o)];
    }
    const double precision = pred_c == 0 ? 0.0 : static_cast<double>(tp) / pred_c;
    const double recall = truth_c == 0 ? 0.0 : static_cast<double>(tp) / truth_c;
    const double f1 =
        precision + recall == 0.0 ? 0.0 : 2 * precision * recall / (precision + recall);
    eval.per_class_precision[static_cast<std::size_t>(c)] = precision;
    eval.per_class_recall[static_cast<std::size_t>(c)] = recall;
    eval.per_class_f1[static_cast<std::size_t>(c)] = f1;
    f1_sum += f1;
  }
  eval.macro_f1 = n == 0 ? 0.0 : f1_sum / n;
  return eval;
}

}  // namespace sevuldet::core
