// Step II of the paper: heuristically generated gadget labels can be
// wrong ("the invulnerable statements being the same as the vulnerable
// statements"); the paper narrows the manual-check range with k-fold
// cross-validation and relabels after manual judgment. This implements
// the automated narrowing: train one model per fold and flag the test
// samples that are misclassified with high confidence — the candidates a
// human reviewer would inspect.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sevuldet/core/trainer.hpp"

namespace sevuldet::core {

struct RelabelConfig {
  int folds = 5;              // the paper's k
  float confidence = 0.9f;    // |probability - label| above this => suspect
  TrainConfig train;
  std::uint64_t split_seed = 17;
};

struct SuspectLabel {
  std::size_t sample_index = 0;
  float probability = 0.0f;  // model's vulnerable-probability
  int label = 0;             // the (possibly wrong) recorded label
};

/// Factory so callers choose the screening model (a small SeVulDetNet is
/// typical); receives the vocabulary size.
using DetectorFactory =
    std::function<std::unique_ptr<models::Detector>(int vocab_size)>;

/// Every sample is test data in exactly one fold; it is flagged when the
/// fold's model contradicts its label with at least `confidence`.
/// Returned sorted by descending disagreement.
std::vector<SuspectLabel> find_suspect_labels(const dataset::Corpus& corpus,
                                              const DetectorFactory& factory,
                                              const RelabelConfig& config = {});

}  // namespace sevuldet::core
