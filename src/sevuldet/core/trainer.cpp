#include "sevuldet/core/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "sevuldet/nn/autograd.hpp"
#include "sevuldet/nn/optim.hpp"
#include "sevuldet/util/log.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/strings.hpp"
#include "sevuldet/util/thread_pool.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::core {

SampleRefs sample_refs(const dataset::Corpus& corpus,
                       const std::vector<std::size_t>& idx) {
  SampleRefs refs;
  refs.reserve(idx.size());
  for (std::size_t i : idx) refs.push_back(&corpus.samples[i]);
  return refs;
}

SampleRefs all_sample_refs(const dataset::Corpus& corpus) {
  SampleRefs refs;
  refs.reserve(corpus.samples.size());
  for (const auto& s : corpus.samples) refs.push_back(&s);
  return refs;
}

SampleRefs filter_category(const SampleRefs& refs, slicer::TokenCategory category) {
  SampleRefs out;
  for (const auto* s : refs) {
    if (s->category == category) out.push_back(s);
  }
  return out;
}

TrainResult train_detector(models::Detector& detector, const SampleRefs& train,
                           const TrainConfig& config) {
  util::trace::ScopedSpan train_span("train");
  TrainResult result;
  result.samples = train.size();
  if (train.empty()) return result;

  float pos_weight = config.pos_weight;
  if (pos_weight <= 0.0f) {
    long long pos = 0;
    for (const auto* s : train) pos += s->label;
    const long long neg = static_cast<long long>(train.size()) - pos;
    pos_weight = pos == 0 ? 1.0f
                          : std::min(10.0f, static_cast<float>(neg) /
                                                static_cast<float>(std::max(1LL, pos)));
  }

  nn::Adam opt(detector.params(), config.lr);
  util::Rng shuffle_rng(config.seed);
  std::vector<std::size_t> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // One arena-backed graph reused for every sample: after the first pass
  // over the largest gadget, a train step performs no heap allocation.
  // Classification threshold in logit space: sigmoid(z) > t <=> z > ln(t/(1-t)).
  const float threshold = detector.config().threshold;
  const float logit_threshold =
      std::log(threshold / std::max(1e-7f, 1.0f - threshold));

  nn::Graph graph;
  const auto start = std::chrono::steady_clock::now();
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    util::trace::ScopedSpan epoch_span("train.epoch");
    shuffle_rng.shuffle(order);
    double loss_sum = 0.0;
    long long correct = 0, counted = 0;
    for (std::size_t i : order) {
      const auto& sample = *train[i];
      if (sample.ids.empty()) continue;
      util::metrics::counter_add("train.steps");
      nn::GraphScope scope(graph);
      // Through the item seam so graph backends see the sample's PDG
      // projection; sequence backends delegate to forward_logit(ids) —
      // byte-identical to the pre-seam loop.
      const models::BatchItem item{&sample.ids, false, &sample.graph};
      nn::NodePtr logit = detector.forward_logit_item(item, /*train=*/true);
      const bool predicted = logit->value.at(0, 0) > logit_threshold;
      correct += predicted == (sample.label == 1) ? 1 : 0;
      ++counted;
      nn::NodePtr loss =
          nn::bce_with_logits(logit, static_cast<float>(sample.label));
      if (sample.label == 1 && pos_weight != 1.0f) {
        loss = nn::scale(loss, pos_weight);
      }
      loss_sum += loss->value.at(0, 0);
      opt.zero_grad();
      nn::backward(loss);
      opt.clip_grad_norm(config.grad_clip);
      opt.step();
    }
    const float mean_loss =
        static_cast<float>(loss_sum / static_cast<double>(train.size()));
    result.epoch_losses.push_back(mean_loss);
    result.epoch_accuracies.push_back(
        counted == 0 ? 0.0f
                     : static_cast<float>(correct) / static_cast<float>(counted));
    util::metrics::counter_add("train.epochs");
    if (config.verbose) {
      util::log_info(detector.name() + " epoch " + std::to_string(epoch + 1) +
                     "/" + std::to_string(config.epochs) + " loss=" +
                     util::fmt(mean_loss, 4));
    }
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

namespace {

/// Score test[begin,end) in one predict_batch call (length-bucketed
/// large GEMMs for SeVulDetNet, a per-sample loop for the RNN baselines)
/// and tally the confusion. Same skips and threshold compare as the old
/// per-sample loop — identical counts.
dataset::Confusion evaluate_chunk(models::Detector& model,
                                  const SampleRefs& test, std::size_t begin,
                                  std::size_t end) {
  std::vector<models::BatchItem> items;
  std::vector<bool> truths;
  items.reserve(end - begin);
  truths.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    const auto* sample = test[i];
    if (sample->ids.empty()) continue;
    items.push_back({&sample->ids, false, &sample->graph});
    truths.push_back(sample->label == 1);
  }
  std::vector<models::Prediction> predictions(items.size());
  model.predict_batch(items.data(), items.size(), predictions.data());
  dataset::Confusion confusion;
  const float threshold = model.config().threshold;
  for (std::size_t j = 0; j < items.size(); ++j) {
    confusion.record(predictions[j].probability > threshold, truths[j]);
  }
  return confusion;
}

}  // namespace

dataset::Confusion evaluate_detector(models::Detector& detector,
                                     const SampleRefs& test, int threads) {
  util::trace::ScopedSpan span("eval");
  util::metrics::counter_add("eval.samples",
                             static_cast<long long>(test.size()));
  const int workers = util::resolve_threads(threads);
  if (workers <= 1 || test.size() < 2) {
    return evaluate_chunk(detector, test, 0, test.size());
  }

  util::ThreadPool pool(workers);
  std::vector<std::unique_ptr<models::Detector>> clones(
      static_cast<std::size_t>(pool.size()));
  std::vector<dataset::Confusion> partial(static_cast<std::size_t>(pool.size()));
  for (auto& clone : clones) clone = detector.clone();
  pool.parallel_chunks(test.size(), [&](int worker, std::size_t begin,
                                        std::size_t end) {
    partial[static_cast<std::size_t>(worker)] =
        evaluate_chunk(*clones[static_cast<std::size_t>(worker)], test, begin,
                       end);
  });
  dataset::Confusion confusion;
  for (const auto& p : partial) confusion += p;
  return confusion;
}

}  // namespace sevuldet::core
