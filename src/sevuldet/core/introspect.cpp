#include "sevuldet/core/introspect.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <stdexcept>

#include "sevuldet/dataset/corpus_io.hpp"
#include "sevuldet/dataset/kfold.hpp"
#include "sevuldet/slicer/special_tokens.hpp"
#include "sevuldet/util/json.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/strings.hpp"
#include "sevuldet/util/table.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::core {

namespace json = util::json;
namespace metrics = util::metrics;

namespace {

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// Restores the metrics-registry enabled flag on scope exit, so the
/// report can force counters on without clobbering the caller's
/// observability settings.
class MetricsEnabledGuard {
 public:
  MetricsEnabledGuard() : was_enabled_(metrics::enabled()) {
    metrics::set_enabled(true);
  }
  ~MetricsEnabledGuard() { metrics::set_enabled(was_enabled_); }

 private:
  bool was_enabled_;
};

/// Counter deltas between two snapshots whose names contain ".drop.".
std::map<std::string, long long> drop_deltas(
    const std::map<std::string, long long>& before,
    const std::map<std::string, long long>& after) {
  std::map<std::string, long long> drops;
  for (const auto& [name, count] : after) {
    if (name.find(".drop.") == std::string::npos) continue;
    long long base = 0;
    if (auto it = before.find(name); it != before.end()) base = it->second;
    if (count - base > 0) drops[name] = count - base;
  }
  return drops;
}

void append_confusion_fields(std::string& out,
                             const dataset::Confusion& confusion) {
  out += "\"tp\": ";
  json::append_number(out, static_cast<double>(confusion.tp));
  out += ", \"fp\": ";
  json::append_number(out, static_cast<double>(confusion.fp));
  out += ", \"tn\": ";
  json::append_number(out, static_cast<double>(confusion.tn));
  out += ", \"fn\": ";
  json::append_number(out, static_cast<double>(confusion.fn));
  out += ", \"accuracy\": ";
  json::append_number(out, confusion.accuracy());
  out += ", \"precision\": ";
  json::append_number(out, confusion.precision());
  out += ", \"recall\": ";
  json::append_number(out, confusion.recall());
  out += ", \"f1\": ";
  json::append_number(out, confusion.f1());
}

void append_breakdown(std::string& out, const char* name,
                      const std::vector<BreakdownRow>& rows) {
  out += "    \"";
  out += name;
  out += "\": [";
  bool first = true;
  for (const auto& row : rows) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "      {\"key\": ";
    json::append_string(out, row.key);
    out += ", ";
    append_confusion_fields(out, row.confusion);
    out += "}";
  }
  out += first ? "]" : "\n    ]";
}

void append_float_array(std::string& out, const std::vector<float>& values) {
  out += "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    json::append_number(out, static_cast<double>(values[i]));
  }
  out += "]";
}

std::string pct(double fraction) { return util::fmt(fraction * 100.0, 1); }

}  // namespace

std::string length_bucket(std::size_t tokens) {
  if (tokens <= 20) return "1-20";
  if (tokens <= 40) return "21-40";
  if (tokens <= 80) return "41-80";
  return ">80";
}

EvaluationReport run_quality_report(const ReportConfig& config) {
  util::trace::ScopedSpan span("report");
  EvaluationReport report;

  // Drop accounting needs the counters on for the duration of the run.
  MetricsEnabledGuard metrics_guard;
  const auto counters_before = metrics::snapshot().counters;

  auto cases = dataset::generate_sard_like(config.corpus);
  auto corpus = dataset::build_corpus(cases, config.pipeline.corpus);
  dataset::encode_corpus(corpus, config.pipeline.corpus.min_token_count);
  report.corpus_fingerprint = hex64(dataset::corpus_fingerprint(corpus));
  report.total_samples = static_cast<long long>(corpus.samples.size());
  report.vulnerable_samples = corpus.stats.vulnerable();

  const auto splits =
      dataset::k_fold_splits(corpus.samples.size(), config.folds,
                             config.fold_seed);
  const auto& split = splits.front();
  report.train_samples = static_cast<long long>(split.train.size());
  report.test_samples = static_cast<long long>(split.test.size());

  SeVulDet detector(config.pipeline);
  auto train_result =
      detector.train_on_corpus(corpus, sample_refs(corpus, split.train));
  report.epoch_losses = train_result.epoch_losses;
  report.epoch_accuracies = train_result.epoch_accuracies;
  report.train_seconds = train_result.seconds;

  // Held-out evaluation: the whole test fold is scored in one
  // length-bucketed predict_batch call (training stays fp32; the
  // requested precision applies to evaluation only), then every
  // breakdown is fed from the returned probabilities.
  util::trace::ScopedSpan eval_span("report.eval");
  detector.model().set_precision(config.precision);
  report.backend = config.pipeline.backend;
  report.precision = models::precision_name(config.precision);
  std::vector<models::BatchItem> items;
  items.reserve(split.test.size());
  for (std::size_t idx : split.test) {
    items.push_back({&corpus.samples[idx].ids, false, &corpus.samples[idx].graph});
  }
  std::vector<models::Prediction> scored(items.size());
  detector.model().predict_batch(items.data(), items.size(), scored.data());
  const float threshold = config.pipeline.model.threshold;
  std::vector<dataset::ScoredPrediction> predictions;
  predictions.reserve(split.test.size());
  std::map<std::string, dataset::Confusion> by_cwe;
  std::map<std::string, dataset::Confusion> by_length;
  dataset::Confusion clean_by_cwe;  // shared negatives for every CWE row
  std::size_t scored_idx = 0;
  for (std::size_t idx : split.test) {
    const auto& sample = corpus.samples[idx];
    const float probability = scored[scored_idx++].probability;
    const bool predicted = probability > threshold;
    const bool actual = sample.label == 1;
    report.confusion.record(predicted, actual);
    predictions.push_back({probability, sample.label});
    by_length[length_bucket(sample.ids.size())].record(predicted, actual);
    if (actual) {
      by_cwe[sample.cwe.empty() ? "unknown" : sample.cwe].record(predicted,
                                                                 true);
    } else {
      clean_by_cwe.record(predicted, false);
    }
  }
  for (auto& [cwe, confusion] : by_cwe) {
    confusion += clean_by_cwe;
    report.by_cwe.push_back({cwe, confusion});
  }
  // Buckets in ascending length order, not lexicographic.
  for (const char* bucket : {"1-20", "21-40", "41-80", ">80"}) {
    if (auto it = by_length.find(bucket); it != by_length.end()) {
      report.by_length.push_back({bucket, it->second});
    }
  }
  report.auc = dataset::roc_auc(predictions);
  report.calibration = dataset::calibrate(predictions);
  report.drops = drop_deltas(counters_before, metrics::snapshot().counters);
  return report;
}

std::string report_to_json(const EvaluationReport& report) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema_version\": ";
  json::append_number(out, kReportSchemaVersion);
  out += ",\n  \"corpus\": {\n    \"fingerprint\": ";
  json::append_string(out, report.corpus_fingerprint);
  out += ",\n    \"total_samples\": ";
  json::append_number(out, static_cast<double>(report.total_samples));
  out += ",\n    \"vulnerable_samples\": ";
  json::append_number(out, static_cast<double>(report.vulnerable_samples));
  out += ",\n    \"train_samples\": ";
  json::append_number(out, static_cast<double>(report.train_samples));
  out += ",\n    \"test_samples\": ";
  json::append_number(out, static_cast<double>(report.test_samples));
  out += "\n  },\n  \"training\": {\n    \"seconds\": ";
  json::append_number(out, report.train_seconds);
  out += ",\n    \"epoch_losses\": ";
  append_float_array(out, report.epoch_losses);
  out += ",\n    \"epoch_accuracies\": ";
  append_float_array(out, report.epoch_accuracies);
  out += "\n  },\n  \"evaluation\": {\n    \"backend\": ";
  json::append_string(out, report.backend);
  out += ",\n    \"precision\": ";
  json::append_string(out, report.precision);
  out += ",\n    \"confusion\": {";
  append_confusion_fields(out, report.confusion);
  out += "},\n    \"fpr\": ";
  json::append_number(out, report.confusion.fpr());
  out += ",\n    \"fnr\": ";
  json::append_number(out, report.confusion.fnr());
  out += ",\n    \"auc\": ";
  json::append_number(out, report.auc);
  out += ",\n";
  append_breakdown(out, "by_cwe", report.by_cwe);
  out += ",\n";
  append_breakdown(out, "by_length", report.by_length);
  out += "\n  },\n  \"calibration\": {\n    \"ece\": ";
  json::append_number(out, report.calibration.ece);
  out += ",\n    \"bins\": [";
  bool first = true;
  for (const auto& bin : report.calibration.bins) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "      {\"lower\": ";
    json::append_number(out, bin.lower);
    out += ", \"upper\": ";
    json::append_number(out, bin.upper);
    out += ", \"count\": ";
    json::append_number(out, static_cast<double>(bin.count));
    out += ", \"mean_probability\": ";
    json::append_number(out, bin.mean_probability);
    out += ", \"frac_positive\": ";
    json::append_number(out, bin.frac_positive);
    out += "}";
  }
  out += first ? "]" : "\n    ]";
  out += "\n  },\n  \"drops\": {";
  first = true;
  for (const auto& [name, count] : report.drops) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    json::append_string(out, name);
    out += ": ";
    json::append_number(out, static_cast<double>(count));
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

std::string report_summary(const EvaluationReport& report) {
  std::string out;
  out += "corpus " + report.corpus_fingerprint + ": " +
         std::to_string(report.total_samples) + " gadgets (" +
         std::to_string(report.vulnerable_samples) + " vulnerable), " +
         std::to_string(report.train_samples) + " train / " +
         std::to_string(report.test_samples) + " test\n";
  out += "epoch loss:";
  for (float loss : report.epoch_losses) out += " " + util::fmt(loss, 4);
  out += "\nepoch accuracy:";
  for (float acc : report.epoch_accuracies) out += " " + pct(acc) + "%";
  out += "\n\nheld-out fold (" + report.backend + ", " + report.precision +
         "): " + report.confusion.summary() + " AUC=" + util::fmt(report.auc, 3) +
         " ECE=" + util::fmt(report.calibration.ece, 3) + "\n\n";

  auto breakdown_table = [](const char* label,
                            const std::vector<BreakdownRow>& rows) {
    util::Table table({label, "TP", "FP", "TN", "FN", "P%", "R%", "F1%"});
    for (const auto& row : rows) {
      table.add_row({row.key, std::to_string(row.confusion.tp),
                     std::to_string(row.confusion.fp),
                     std::to_string(row.confusion.tn),
                     std::to_string(row.confusion.fn),
                     pct(row.confusion.precision()), pct(row.confusion.recall()),
                     pct(row.confusion.f1())});
    }
    return table.to_string();
  };
  out += breakdown_table("CWE", report.by_cwe) + "\n";
  out += breakdown_table("length", report.by_length) + "\n";

  util::Table calib({"bin", "count", "confidence%", "vulnerable%"});
  for (const auto& bin : report.calibration.bins) {
    calib.add_row({util::fmt(bin.lower, 1) + "-" + util::fmt(bin.upper, 1),
                   std::to_string(bin.count), pct(bin.mean_probability),
                   pct(bin.frac_positive)});
  }
  out += calib.to_string();

  if (!report.drops.empty()) {
    out += "\npipeline drops:\n";
    for (const auto& [name, count] : report.drops) {
      out += "  " + name + ": " + std::to_string(count) + "\n";
    }
  }
  return out;
}

std::string explanations_to_json(const std::string& file,
                                 const std::vector<Finding>& findings) {
  std::string out;
  out.reserve(2048);
  out += "{\n  \"schema_version\": ";
  json::append_number(out, kReportSchemaVersion);
  out += ",\n  \"file\": ";
  json::append_string(out, file);
  out += ",\n  \"findings\": [";
  bool first_finding = true;
  for (const auto& finding : findings) {
    out += first_finding ? "\n" : ",\n";
    first_finding = false;
    out += "    {\n      \"function\": ";
    json::append_string(out, finding.function);
    out += ",\n      \"line\": ";
    json::append_number(out, finding.line);
    out += ",\n      \"category\": ";
    json::append_string(out, slicer::category_name(finding.category));
    out += ",\n      \"token\": ";
    json::append_string(out, finding.token);
    out += ",\n      \"probability\": ";
    json::append_number(out, static_cast<double>(finding.probability));
    out += ",\n      \"attributions\": [";
    bool first = true;
    for (const auto& attribution : finding.attributions) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "        {\"token\": ";
      json::append_string(out, attribution.token);
      out += ", \"original\": ";
      json::append_string(out, attribution.original);
      out += ", \"function\": ";
      json::append_string(out, attribution.function);
      out += ", \"line\": ";
      json::append_number(out, attribution.line);
      out += ", \"weight\": ";
      json::append_number(out, static_cast<double>(attribution.weight));
      out += "}";
    }
    out += first ? "]" : "\n      ]";
    out += ",\n      \"spatial_attention\": ";
    append_float_array(out, finding.spatial_attention);
    out += "\n    }";
  }
  out += first_finding ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

ComparisonReport run_comparison_report(
    const ReportConfig& config, const std::vector<std::string>& backends) {
  ComparisonReport comparison;
  comparison.runs.reserve(backends.size());
  for (const std::string& backend : backends) {
    if (!models::valid_backend(backend)) {
      throw std::invalid_argument("report --compare: unknown backend '" +
                                  backend + "'");
    }
    // Same corpus + same fold across runs: generation and the k-fold
    // split are pure functions of the config seeds, which do not vary
    // with the backend. Only the detector differs.
    ReportConfig run_config = config;
    run_config.pipeline.backend = backend;
    comparison.runs.push_back(run_quality_report(run_config));
  }
  return comparison;
}

std::string comparison_to_json(const ComparisonReport& comparison) {
  std::string out;
  out.reserve(4096 * (comparison.runs.size() + 1));
  out += "{\n  \"schema_version\": ";
  json::append_number(out, kReportSchemaVersion);
  out += ",\n  \"runs\": [";
  bool first = true;
  for (const EvaluationReport& run : comparison.runs) {
    out += first ? "\n" : ",\n";
    first = false;
    out += report_to_json(run);
    // report_to_json ends with "}\n"; drop the trailing newline so the
    // array stays tidy.
    if (!out.empty() && out.back() == '\n') out.pop_back();
  }
  out += first ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

std::string comparison_summary(const ComparisonReport& comparison) {
  std::string out;
  if (comparison.runs.empty()) return out;
  out += "corpus " + comparison.runs.front().corpus_fingerprint + ": " +
         std::to_string(comparison.runs.front().total_samples) +
         " gadgets, same fold for every backend\n\n";
  util::Table table(
      {"backend", "P%", "R%", "F1%", "AUC", "ECE", "train s"});
  for (const EvaluationReport& run : comparison.runs) {
    table.add_row({run.backend, pct(run.confusion.precision()),
                   pct(run.confusion.recall()), pct(run.confusion.f1()),
                   util::fmt(run.auc, 3), util::fmt(run.calibration.ece, 3),
                   util::fmt(run.train_seconds, 1)});
  }
  out += table.to_string();
  for (const EvaluationReport& run : comparison.runs) {
    if (run.corpus_fingerprint != comparison.runs.front().corpus_fingerprint) {
      out += "\nWARNING: corpus fingerprints differ across runs (" +
             comparison.runs.front().corpus_fingerprint + " vs " +
             run.corpus_fingerprint + ") — comparison is not same-fold\n";
      break;
    }
  }
  return out;
}

}  // namespace sevuldet::core
