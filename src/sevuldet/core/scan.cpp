#include "sevuldet/core/scan.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <utility>

#include "sevuldet/frontend/recover.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/slicer/special_tokens.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/mmap_file.hpp"
#include "sevuldet/util/strings.hpp"
#include "sevuldet/util/thread_pool.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::core {

namespace fs = std::filesystem;

namespace {

int count_lines(std::string_view text) {
  if (text.empty()) return 0;
  int lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  if (text.back() != '\n') ++lines;
  return lines;
}

/// Degrade a lost region to the lex-fallback gadget path: every risky
/// library call inside it becomes a pseudo-gadget of the surrounding
/// lines. The region failed the parser, so there is no slice — a small
/// fixed line window stands in for it. normalize_gadget() tokenizes the
/// lines through its own lexer fallback, which never throws.
void append_fallback_gadgets(const frontend::LostRegion& region,
                             const normalize::Vocabulary& vocab,
                             std::vector<PreparedGadget>& out) {
  const std::vector<std::string> lines = util::split_lines(region.text);
  auto ident_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  auto ident_cont = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  };
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    for (std::size_t i = 0; i < line.size();) {
      if (!ident_start(line[i])) {
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      while (j < line.size() && ident_cont(line[j])) ++j;
      const std::string_view word(line.data() + i, j - i);
      std::size_t k = j;
      while (k < line.size() && (line[k] == ' ' || line[k] == '\t')) ++k;
      const bool call = k < line.size() && line[k] == '(';
      i = j;
      if (!call || !slicer::is_risky_library_function(word)) continue;

      PreparedGadget prepared;
      prepared.token.category = slicer::TokenCategory::FunctionCall;
      prepared.token.unit = -1;
      prepared.token.line = region.begin_line + static_cast<int>(li);
      prepared.token.text = std::string(word);
      prepared.gadget.token = prepared.token;
      prepared.gadget.path_sensitive = false;
      const std::size_t lo = li >= 4 ? li - 4 : 0;
      const std::size_t hi = std::min(lines.size() - 1, li + 3);
      for (std::size_t g = lo; g <= hi; ++g) {
        slicer::GadgetLine gadget_line;
        gadget_line.line = region.begin_line + static_cast<int>(g);
        gadget_line.text = std::string(util::trim(lines[g]));
        if (gadget_line.text.empty()) continue;
        prepared.gadget.lines.push_back(std::move(gadget_line));
      }
      if (prepared.gadget.lines.empty()) {
        util::metrics::counter_add("scan.drop.empty_fallback");
        continue;
      }
      prepared.norm = normalize::normalize_gadget(prepared.gadget);
      if (prepared.norm.tokens.empty()) {
        util::metrics::counter_add("scan.drop.empty_fallback");
        continue;
      }
      prepared.ids = vocab.encode(prepared.norm.tokens);
      out.push_back(std::move(prepared));
    }
  }
}

/// Scan one buffer with an explicit scoring model (the caller picks the
/// per-worker clone). Serial within the file; tree-level parallelism is
/// across files.
FileScanResult scan_buffer(SeVulDet& detector, models::Detector& model,
                           std::string label, std::string_view source,
                           const ScanOptions& options,
                           const std::vector<std::string>& include_roots,
                           const std::string& current_dir) {
  util::trace::ScopedSpan span("scan.file");
  util::metrics::counter_add("scan.files");
  FileScanResult result;
  result.path = std::move(label);

  frontend::PreprocessResult pre;
  if (options.run_preprocessor) {
    util::trace::ScopedSpan pre_span("frontend.preprocess");
    frontend::PreprocessOptions pre_options = options.preprocess;
    pre_options.include_roots = include_roots;
    pre_options.current_dir = current_dir;
    pre = frontend::preprocess(source, pre_options);
  } else {
    pre.text.assign(source.begin(), source.end());
  }
  result.stats.preprocess = pre.stats;
  result.stats.preprocessed = pre.changed;
  result.stats.lines_total = count_lines(pre.text);

  frontend::RecoveredParse parsed = frontend::parse_with_recovery(pre.text);
  result.stats.parse_clean = parsed.clean;
  result.stats.chunks_total = parsed.chunks_total;
  result.stats.chunks_recovered = parsed.chunks_recovered;
  result.stats.lost_regions = static_cast<int>(parsed.lost.size());
  for (const frontend::LostRegion& region : parsed.lost) {
    result.stats.lines_lost += region.end_line - region.begin_line + 1;
  }

  graph::ProgramGraph program =
      graph::build_program_graph(std::move(parsed.unit), pre.text);
  std::vector<PreparedGadget> prepared = detector.prepare_program(program);
  const std::size_t first_fallback = prepared.size();
  for (const frontend::LostRegion& region : parsed.lost) {
    append_fallback_gadgets(region, detector.vocab(), prepared);
  }
  result.stats.fallback_gadgets =
      static_cast<int>(prepared.size() - first_fallback);
  if (result.stats.fallback_gadgets > 0) {
    util::metrics::counter_add(
        "scan.fallback_gadgets",
        static_cast<long long>(result.stats.fallback_gadgets));
  }

  std::vector<models::BatchItem> items;
  items.reserve(prepared.size());
  for (PreparedGadget& gadget : prepared) {
    items.push_back({&gadget.ids, options.detect.explain, &gadget.graph});
  }
  std::vector<models::Prediction> predictions(items.size());
  model.predict_batch(items.data(), items.size(), predictions.data());

  for (std::size_t i = 0; i < prepared.size(); ++i) {
    std::optional<Finding> finding = detector.finding_from_prediction(
        prepared[i], predictions[i], options.detect);
    if (!finding.has_value()) continue;
    // Map preprocessed-text lines back to the file the user pointed the
    // scanner at; findings whose special token came from an #include
    // belong to that header, not this file.
    const int origin = pre.origin_line(finding->line);
    if (origin == 0) {
      ++result.stats.findings_dropped_include;
      util::metrics::counter_add("scan.drop.include_origin");
      continue;
    }
    finding->line = origin;
    for (TokenAttribution& attribution : finding->attributions) {
      attribution.line = pre.origin_line(attribution.line);
    }
    if (i >= first_fallback) ++result.stats.fallback_findings;
    result.findings.push_back(std::move(*finding));
  }
  SeVulDet::sort_findings(result.findings);
  util::metrics::counter_add("scan.findings",
                             static_cast<long long>(result.findings.size()));
  return result;
}

void apply_precision(SeVulDet& detector, const ScanOptions& options) {
  if (!detector.trained()) {
    throw std::logic_error("SeVulDet scan before train/load");
  }
  if (detector.model().precision() != options.detect.precision) {
    detector.model().set_precision(options.detect.precision);
  }
}

FileScanResult failed_file(std::string path, const char* error) {
  util::metrics::counter_add("scan.files");
  util::metrics::counter_add("scan.files_failed");
  FileScanResult result;
  result.path = std::move(path);
  result.ok = false;
  result.error = error;
  return result;
}

}  // namespace

std::vector<std::string> list_scan_files(
    const std::string& root, const std::vector<std::string>& extensions) {
  std::vector<std::string> out;
  const fs::path base(root);
  std::error_code ec;
  fs::recursive_directory_iterator it(base, ec);
  if (ec) return out;
  for (const fs::directory_entry& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) continue;
    const std::string ext = entry.path().extension().string();
    if (std::find(extensions.begin(), extensions.end(), ext) ==
        extensions.end()) {
      continue;
    }
    out.push_back(entry.path().lexically_relative(base).generic_string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

FileScanResult scan_source(SeVulDet& detector, const std::string& label,
                           std::string_view source,
                           const ScanOptions& options) {
  apply_precision(detector, options);
  return scan_buffer(detector, detector.model(), label, source, options,
                     options.preprocess.include_roots,
                     options.preprocess.current_dir);
}

FileScanResult scan_file(SeVulDet& detector, const std::string& path,
                         const ScanOptions& options) {
  apply_precision(detector, options);
  std::vector<std::string> roots = options.preprocess.include_roots;
  std::string dir = fs::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  if (roots.empty()) roots.push_back(dir);
  try {
    const util::MmapFile file = util::MmapFile::open(path);
    return scan_buffer(detector, detector.model(), path, file.view(), options,
                       roots, dir);
  } catch (const std::runtime_error& e) {
    return failed_file(path, e.what());
  }
}

TreeScanResult scan_tree(SeVulDet& detector, const std::string& root,
                         const ScanOptions& options) {
  util::trace::ScopedSpan span("scan.tree");
  apply_precision(detector, options);

  TreeScanResult tree;
  tree.root = root;
  const std::vector<std::string> files =
      list_scan_files(root, options.extensions);
  tree.files.resize(files.size());
  std::vector<long long> sizes(files.size(), 0);

  std::vector<std::string> roots = options.preprocess.include_roots;
  if (roots.empty()) roots.push_back(root);

  auto scan_one = [&](models::Detector& model, std::size_t i) {
    const fs::path abs = fs::path(root) / files[i];
    try {
      const util::MmapFile file = util::MmapFile::open(abs.string());
      sizes[i] = static_cast<long long>(file.size());
      tree.files[i] =
          scan_buffer(detector, model, files[i], file.view(), options, roots,
                      abs.parent_path().string());
    } catch (const std::runtime_error& e) {
      tree.files[i] = failed_file(files[i], e.what());
    }
  };

  const int requested =
      options.threads != 0 ? options.threads : detector.config().corpus.threads;
  const int threads = util::resolve_threads(requested);
  if (threads > 1 && files.size() > 1) {
    util::ThreadPool pool(threads);
    std::vector<std::unique_ptr<models::Detector>> clones(
        static_cast<std::size_t>(pool.size()));
    for (auto& clone : clones) clone = detector.model().clone();
    pool.parallel_chunks(files.size(), [&](int worker, std::size_t begin,
                                           std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        scan_one(*clones[static_cast<std::size_t>(worker)], i);
      }
    });
  } else {
    for (std::size_t i = 0; i < files.size(); ++i) {
      scan_one(detector.model(), i);
    }
  }

  TreeScanStats& stats = tree.stats;
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    const FileScanResult& file = tree.files[i];
    ++stats.files;
    if (!file.ok) {
      ++stats.files_failed;
      continue;
    }
    stats.bytes += sizes[i];
    if (!file.stats.parse_clean) ++stats.files_recovered;
    stats.findings += static_cast<int>(file.findings.size());
    stats.fallback_findings += file.stats.fallback_findings;
    stats.lines_total += file.stats.lines_total;
    stats.lines_lost += file.stats.lines_lost;
    stats.includes_resolved += file.stats.preprocess.includes_resolved;
    stats.includes_unresolved += file.stats.preprocess.includes_unresolved;
    stats.macro_expansions += file.stats.preprocess.macro_expansions;
    stats.conditionals += file.stats.preprocess.conditionals;
    stats.unresolved_conditionals +=
        file.stats.preprocess.unresolved_conditionals;
  }
  if (stats.lines_total > 0) {
    stats.parse_drop_rate =
        static_cast<double>(stats.lines_lost) / stats.lines_total;
  }
  const int constructs = stats.includes_resolved + stats.includes_unresolved +
                         stats.conditionals;
  if (constructs > 0) {
    stats.preprocess_drop_rate = std::min(
        1.0, static_cast<double>(stats.includes_unresolved +
                                 stats.unresolved_conditionals) /
                 constructs);
  }
  util::metrics::gauge_set("scan.parse_drop_rate", stats.parse_drop_rate);
  util::metrics::gauge_set("scan.preprocess_drop_rate",
                           stats.preprocess_drop_rate);
  util::metrics::counter_add("scan.trees");
  util::metrics::counter_add("scan.lines_total",
                             static_cast<long long>(stats.lines_total));
  util::metrics::counter_add("scan.lines_lost",
                             static_cast<long long>(stats.lines_lost));
  return tree;
}

}  // namespace sevuldet::core
