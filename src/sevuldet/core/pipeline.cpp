#include "sevuldet/core/pipeline.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "sevuldet/dataset/gadget_graph.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/nn/serialize.hpp"
#include "sevuldet/normalize/normalize.hpp"
#include "sevuldet/util/binary_io.hpp"
#include "sevuldet/util/log.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/thread_pool.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::core {

SeVulDet::SeVulDet(PipelineConfig config) : config_(std::move(config)) {}

void SeVulDet::build_model() {
  models::ModelConfig model_config = config_.model;
  model_config.vocab_size = vocab_.size();
  model_ = models::make_detector(config_.backend, std::move(model_config));
}

TrainResult SeVulDet::train(const std::vector<dataset::TestCase>& programs) {
  dataset::Corpus corpus = dataset::build_corpus(programs, config_.corpus);
  dataset::encode_corpus(corpus, config_.corpus.min_token_count);
  vocab_ = corpus.vocab;
  return train_on_corpus(corpus, all_sample_refs(corpus));
}

TrainResult SeVulDet::train_on_corpus(const dataset::Corpus& corpus,
                                      const SampleRefs& train_set) {
  vocab_ = corpus.vocab;
  build_model();

  if (config_.pretrain_embeddings) {
    nn::Word2VecConfig w2v_config = config_.word2vec;
    w2v_config.dim = config_.model.embed_dim;
    nn::Word2Vec w2v(vocab_, w2v_config);
    std::vector<std::vector<int>> sentences;
    sentences.reserve(train_set.size());
    for (const auto* s : train_set) sentences.push_back(s->ids);
    w2v.train(sentences);
    models::load_pretrained_embeddings(model_->params(), "embedding",
                                       w2v.embeddings());
  }

  return train_detector(*model_, train_set, config_.train);
}

std::vector<std::pair<std::string, float>> SeVulDet::top_attention_tokens(
    const std::vector<float>& weights, const std::vector<std::string>& tokens,
    int top_k) {
  std::vector<std::pair<std::string, float>> out;
  if (weights.empty()) return out;
  const std::size_t n = std::min(tokens.size(), weights.size());
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return weights[a] > weights[b];
  });
  const float max_w = weights[order[0]] > 0.0f ? weights[order[0]] : 1.0f;
  for (std::size_t i = 0; i < n && static_cast<int>(i) < top_k; ++i) {
    out.emplace_back(tokens[order[i]], weights[order[i]] / max_w);
  }
  return out;
}

std::vector<Finding> SeVulDet::detect(const std::string& source, int top_k) {
  DetectOptions options;
  options.top_k = top_k;
  return detect(source, options);
}

namespace {

/// Trace the top-weighted tokens back to their source lines (Fig. 6
/// provenance). Rank order matches top_attention_tokens (ties broken by
/// position), so the two views of a finding always agree.
std::vector<TokenAttribution> attention_attributions(
    const std::vector<float>& weights, const normalize::NormalizedGadget& norm,
    const slicer::CodeGadget& gadget, int top_k) {
  std::vector<TokenAttribution> out;
  if (weights.empty()) return out;
  const std::size_t n = std::min(norm.tokens.size(), weights.size());
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  const std::map<std::string, std::string> originals =
      norm.placeholder_to_original();
  for (std::size_t i = 0; i < n && static_cast<int>(i) < top_k; ++i) {
    const std::size_t idx = order[i];
    TokenAttribution attr;
    attr.token = norm.tokens[idx];
    auto it = originals.find(attr.token);
    attr.original = it != originals.end() ? it->second : attr.token;
    attr.weight = weights[idx];
    const int gadget_line = idx < norm.lines.size() ? norm.lines[idx] : 0;
    if (gadget_line >= 1 &&
        gadget_line <= static_cast<int>(gadget.lines.size())) {
      const slicer::GadgetLine& gl =
          gadget.lines[static_cast<std::size_t>(gadget_line - 1)];
      attr.function = gl.function;
      attr.line = gl.line;
    }
    out.push_back(std::move(attr));
  }
  return out;
}

/// Steps I-III + encoding for one special token; nullopt (with the
/// matching detect.drop.* counter) when the gadget is empty.
std::optional<PreparedGadget> prepare_token(
    const graph::ProgramGraph& program, const slicer::SpecialToken& token,
    const slicer::GadgetOptions& gadget_options,
    const normalize::Vocabulary& vocab) {
  PreparedGadget prepared;
  prepared.token = token;
  prepared.gadget = slicer::generate_gadget(program, token, gadget_options);
  if (prepared.gadget.lines.empty()) {
    util::metrics::counter_add("detect.drop.empty_gadget");
    return std::nullopt;
  }
  prepared.norm = normalize::normalize_gadget(prepared.gadget);
  if (prepared.norm.tokens.empty()) {
    util::metrics::counter_add("detect.drop.empty_tokens");
    return std::nullopt;
  }
  prepared.ids = vocab.encode(prepared.norm.tokens);
  prepared.graph =
      dataset::build_gadget_graph(program, prepared.gadget, prepared.norm);
  return prepared;
}

}  // namespace

std::vector<PreparedGadget> SeVulDet::prepare(const std::string& source) const {
  if (!trained()) throw std::logic_error("SeVulDet::prepare before train/load");
  return prepare_program(graph::build_program_graph(source));
}

std::vector<PreparedGadget> SeVulDet::prepare_program(
    const graph::ProgramGraph& program) const {
  if (!trained()) throw std::logic_error("SeVulDet::prepare before train/load");
  const std::vector<slicer::SpecialToken> tokens =
      slicer::find_special_tokens(program);
  std::vector<PreparedGadget> prepared;
  prepared.reserve(tokens.size());
  for (const auto& token : tokens) {
    if (auto p = prepare_token(program, token, config_.corpus.gadget, vocab_)) {
      prepared.push_back(std::move(*p));
    }
  }
  return prepared;
}

std::optional<Finding> SeVulDet::finding_from_prediction(
    const PreparedGadget& prepared, const models::Prediction& prediction,
    const DetectOptions& options) const {
  if (prediction.probability <= config_.model.threshold) {
    util::metrics::counter_add("detect.drop.below_threshold");
    return std::nullopt;
  }
  Finding finding;
  finding.function = prepared.token.function;
  finding.line = prepared.token.line;
  finding.category = prepared.token.category;
  finding.token = prepared.token.text;
  finding.probability = prediction.probability;
  finding.top_tokens = top_attention_tokens(prediction.token_weights,
                                            prepared.norm.tokens, options.top_k);
  if (options.explain) {
    util::trace::ScopedSpan explain_span("detect.explain");
    finding.attributions = attention_attributions(
        prediction.token_weights, prepared.norm, prepared.gadget, options.top_k);
    finding.spatial_attention = prediction.spatial_weights;
    util::metrics::counter_add("detect.explained");
  }
  return finding;
}

void SeVulDet::sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.probability > b.probability;
            });
}

std::vector<Finding> SeVulDet::detect(const std::string& source,
                                      const DetectOptions& options) {
  if (!trained()) throw std::logic_error("SeVulDet::detect before train/load");
  util::trace::ScopedSpan span("detect");

  graph::ProgramGraph program = graph::build_program_graph(source);
  const std::vector<slicer::SpecialToken> tokens =
      slicer::find_special_tokens(program);

  if (model_->precision() != options.precision) {
    model_->set_precision(options.precision);
  }

  // Slice + normalize a chunk of special tokens, then score the chunk in
  // one length-bucketed predict_batch call (same per-gadget results as
  // scoring one at a time — bitwise at fp32 — but each bucket runs as
  // large stacked GEMMs). Eval-mode forwards are deterministic, so which
  // model instance runs them does not change the result.
  std::vector<std::optional<Finding>> slots(tokens.size());
  auto process_range = [&](models::Detector& model, std::size_t begin,
                           std::size_t end) {
    std::vector<std::optional<PreparedGadget>> prepared(end - begin);
    std::vector<models::BatchItem> items;
    std::vector<std::size_t> origin;  // token index per batch item
    items.reserve(end - begin);
    origin.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      prepared[i - begin] =
          prepare_token(program, tokens[i], config_.corpus.gadget, vocab_);
      if (prepared[i - begin].has_value()) {
        items.push_back({&prepared[i - begin]->ids, options.explain,
                         &prepared[i - begin]->graph});
        origin.push_back(i);
      }
    }
    std::vector<models::Prediction> predictions(items.size());
    model.predict_batch(items.data(), items.size(), predictions.data());
    for (std::size_t j = 0; j < origin.size(); ++j) {
      slots[origin[j]] = finding_from_prediction(
          *prepared[origin[j] - begin], predictions[j], options);
    }
  };

  const int threads = util::resolve_threads(config_.corpus.threads);
  if (threads > 1 && tokens.size() > 1) {
    util::ThreadPool pool(threads);
    std::vector<std::unique_ptr<models::Detector>> clones(
        static_cast<std::size_t>(pool.size()));
    for (auto& clone : clones) clone = model_->clone();
    pool.parallel_chunks(tokens.size(), [&](int worker, std::size_t begin,
                                            std::size_t end) {
      process_range(*clones[static_cast<std::size_t>(worker)], begin, end);
    });
  } else {
    process_range(*model_, 0, tokens.size());
  }

  std::vector<Finding> findings;
  for (auto& slot : slots) {
    if (slot.has_value()) findings.push_back(std::move(*slot));
  }
  util::metrics::counter_add("detect.calls");
  util::metrics::counter_add("detect.findings",
                             static_cast<long long>(findings.size()));
  sort_findings(findings);
  return findings;
}

namespace {

// v2 layout: the text header line (so a v1 reader fails with a clear
// message), then a framed binary payload — magic + format version + size
// + payload + FNV-1a checksum, the same framing as compiled-corpus files.
// v3 prepends the backend name to the payload so load() rebuilds the
// right network; "cnn" models keep writing v2, byte-identical to every
// pre-registry build (pipeline_test pins this).
constexpr std::string_view kModelHeaderV1 = "SEVULDET-MODEL v1\n";
constexpr std::string_view kModelHeaderV2 = "SEVULDET-MODEL v2\n";
constexpr std::string_view kModelHeaderV3 = "SEVULDET-MODEL v3\n";
constexpr std::string_view kModelMagic = "SVDMODL\n";
constexpr std::uint32_t kModelFormatVersion = 2;
constexpr std::uint32_t kModelFormatVersionV3 = 3;

}  // namespace

void SeVulDet::save(const std::string& path) const {
  if (!trained()) throw std::logic_error("SeVulDet::save before train");
  util::trace::ScopedSpan span("model.save");
  util::metrics::counter_add("model.saves");
  util::ByteWriter payload;
  if (config_.backend != models::kDefaultBackend) {
    payload.str(config_.backend);
  }
  payload.str(vocab_.serialize());
  nn::serialize_params_binary(model_->params(), payload);
  std::string bytes;
  if (config_.backend == models::kDefaultBackend) {
    bytes = kModelHeaderV2;
    bytes +=
        util::frame_payload(kModelMagic, kModelFormatVersion, payload.data());
  } else {
    bytes = kModelHeaderV3;
    bytes +=
        util::frame_payload(kModelMagic, kModelFormatVersionV3, payload.data());
  }
  util::write_binary_file(path, bytes);
}

void SeVulDet::save_text_v1(const std::string& path) const {
  if (!trained()) throw std::logic_error("SeVulDet::save before train");
  util::trace::ScopedSpan span("model.save");
  util::metrics::counter_add("model.saves");
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  const std::string vocab_blob = vocab_.serialize();
  out << kModelHeaderV1;
  out << "vocab " << vocab_blob.size() << '\n';
  out << vocab_blob;
  out << nn::serialize_params(model_->params());
}

void SeVulDet::load(const std::string& path) {
  util::trace::ScopedSpan span("model.load");
  util::metrics::counter_add("model.loads");
  const std::string bytes = util::read_binary_file(path);
  const bool v3 = bytes.compare(0, kModelHeaderV3.size(), kModelHeaderV3) == 0;
  if (v3 || bytes.compare(0, kModelHeaderV2.size(), kModelHeaderV2) == 0) {
    const std::string payload = util::unframe_payload(
        kModelMagic, v3 ? kModelFormatVersionV3 : kModelFormatVersion,
        std::string_view(bytes).substr(kModelHeaderV2.size()), "model file");
    util::ByteReader in(payload);
    if (v3) {
      const std::string backend = in.str();
      if (!models::valid_backend(backend)) {
        throw std::runtime_error("model file: unknown backend '" + backend + "'");
      }
      config_.backend = backend;
    } else {
      config_.backend = models::kDefaultBackend;  // v2 predates backends
    }
    vocab_ = normalize::Vocabulary::deserialize(in.str());
    build_model();
    nn::deserialize_params_binary(model_->params(), in);
    if (!in.done()) {
      throw std::runtime_error("model file: trailing bytes in payload");
    }
    // Load-time tile autotuning: benchmark candidate GEMM cache tiles on
    // this model's actual batched layer shapes and install the winner
    // (once per process; results are tile-invariant, so this only moves
    // wall clock). Backends without a batched GEMM engine report no
    // shapes and skip it.
    const auto shapes = model_->batch_gemm_shapes(256);
    if (!shapes.empty()) nn::kernels::autotune_gemm_for_shapes(shapes);
    return;
  }
  if (bytes.compare(0, kModelHeaderV1.size(), kModelHeaderV1) != 0) {
    throw std::runtime_error("bad model file header: " +
                             bytes.substr(0, bytes.find('\n')));
  }

  // Legacy v1 text format, with explicit bounds checks: a truncated file
  // must throw, never yield a silently NUL-padded vocabulary.
  std::istringstream in(bytes.substr(kModelHeaderV1.size()));
  std::string tag;
  std::size_t vocab_size = 0;
  in >> tag >> vocab_size;
  if (tag != "vocab") throw std::runtime_error("bad model file: missing vocab");
  in.ignore(1);  // newline
  std::string vocab_blob(vocab_size, '\0');
  in.read(vocab_blob.data(), static_cast<std::streamsize>(vocab_size));
  if (static_cast<std::size_t>(in.gcount()) != vocab_size) {
    throw std::runtime_error("model file: truncated vocabulary (expected " +
                             std::to_string(vocab_size) + " bytes, got " +
                             std::to_string(in.gcount()) + ")");
  }
  vocab_ = normalize::Vocabulary::deserialize(vocab_blob);
  config_.backend = models::kDefaultBackend;  // v1 predates backends
  build_model();
  std::ostringstream rest;
  rest << in.rdbuf();
  nn::deserialize_params(model_->params(), rest.str());
  const auto shapes = model_->batch_gemm_shapes(256);
  if (!shapes.empty()) nn::kernels::autotune_gemm_for_shapes(shapes);
}

}  // namespace sevuldet::core
