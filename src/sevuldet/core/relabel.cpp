#include "sevuldet/core/relabel.hpp"

#include <algorithm>
#include <cmath>

#include "sevuldet/dataset/kfold.hpp"
#include "sevuldet/nn/autograd.hpp"

namespace sevuldet::core {

std::vector<SuspectLabel> find_suspect_labels(const dataset::Corpus& corpus,
                                              const DetectorFactory& factory,
                                              const RelabelConfig& config) {
  std::vector<SuspectLabel> suspects;
  auto splits = dataset::k_fold_splits(corpus.samples.size(), config.folds,
                                       config.split_seed);
  for (const auto& split : splits) {
    auto detector = factory(corpus.vocab.size());
    train_detector(*detector, sample_refs(corpus, split.train), config.train);
    nn::Graph graph;
    for (std::size_t idx : split.test) {
      const auto& sample = corpus.samples[idx];
      if (sample.ids.empty()) continue;
      nn::GraphScope scope(graph);
      const float probability = detector->predict(sample.ids);
      const float disagreement =
          std::fabs(probability - static_cast<float>(sample.label));
      if (disagreement >= config.confidence) {
        suspects.push_back({idx, probability, sample.label});
      }
    }
  }
  std::sort(suspects.begin(), suspects.end(),
            [](const SuspectLabel& a, const SuspectLabel& b) {
              const float da = std::fabs(a.probability - static_cast<float>(a.label));
              const float db = std::fabs(b.probability - static_cast<float>(b.label));
              return da > db;
            });
  return suspects;
}

}  // namespace sevuldet::core
