// Multiclass vulnerability-type detection (the paper's detection phase
// "outputs vulnerability type and line number", Fig. 2b; μVulDeePecker
// extends the same gadget pipeline to multiclass). Class 0 is "benign";
// classes 1..N-1 are CWE ids observed in the training corpus.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sevuldet/core/trainer.hpp"

namespace sevuldet::core {

/// Stable CWE-id <-> class-id mapping built from a sample set.
class CweClassMap {
 public:
  static CweClassMap from_samples(const SampleRefs& samples);

  /// Class id for a sample's CWE ("" / unknown CWE -> 0 = benign).
  int class_of(const dataset::GadgetSample& sample) const;
  int class_of_cwe(const std::string& cwe) const;
  const std::string& name_of(int class_id) const;
  int num_classes() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;            // [0] == "benign"
  std::map<std::string, int> class_by_cwe_;
};

struct MulticlassEval {
  double accuracy = 0.0;
  double macro_f1 = 0.0;  // unweighted mean of per-class F1
  // confusion[truth][predicted]
  std::vector<std::vector<long long>> confusion;
  std::vector<double> per_class_precision;
  std::vector<double> per_class_recall;
  std::vector<double> per_class_f1;
};

/// Train with softmax cross-entropy; non-benign samples are up-weighted
/// by the same neg/pos heuristic as the binary trainer.
TrainResult train_multiclass(models::Detector& detector, const SampleRefs& train,
                             const CweClassMap& classes,
                             const TrainConfig& config);

MulticlassEval evaluate_multiclass(models::Detector& detector,
                                   const SampleRefs& test,
                                   const CweClassMap& classes);

}  // namespace sevuldet::core
