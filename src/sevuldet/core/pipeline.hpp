// SEVulDet end-to-end pipeline — the library's primary public API.
// Training phase (paper Fig. 2a): generate path-sensitive code gadgets
// from labeled programs (Steps I-II), normalize (Step III), pre-train
// word2vec and embed with token attention (Step IV), train the
// CNN+SPP+CBAM detector (Step V). Detection phase (Fig. 2b): slice an
// unlabeled program, classify each gadget, and report vulnerability
// findings with line numbers and the attention weights that explain them
// (the Fig. 6 visualization).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sevuldet/core/trainer.hpp"
#include "sevuldet/dataset/corpus.hpp"
#include "sevuldet/dataset/testcase.hpp"
#include "sevuldet/models/registry.hpp"
#include "sevuldet/nn/word2vec.hpp"
#include "sevuldet/normalize/normalize.hpp"

namespace sevuldet::core {

struct PipelineConfig {
  dataset::CorpusOptions corpus;     // path-sensitive by default
  models::ModelConfig model;         // vocab_size is filled automatically
  TrainConfig train;
  nn::Word2VecConfig word2vec;
  bool pretrain_embeddings = true;
  /// Detector backend, resolved through models::make_detector ("cnn" is
  /// the paper's CNN trunk, "gat" the graph-attention backbone). The
  /// name is persisted in v3 model files; v1/v2 files are always "cnn".
  std::string backend = models::kDefaultBackend;
};

/// One ranked attention attribution (Fig. 6 provenance): a normalized
/// token of the gadget traced back to its original spelling and source
/// location through the slicer's line records and the normalizer's
/// invertible var/fun placeholder maps.
struct TokenAttribution {
  std::string token;     // normalized spelling, e.g. "var2"
  std::string original;  // original spelling, e.g. "data"
  std::string function;  // enclosing function of the source line
  int line = 0;          // 1-based original source line (0 if unknown)
  float weight = 0.0f;   // raw α_i (softmax over the gadget, sums to ~1)
};

/// One detection-phase result: a gadget classified as vulnerable.
struct Finding {
  std::string function;
  int line = 0;                       // line of the special token
  slicer::TokenCategory category = slicer::TokenCategory::FunctionCall;
  std::string token;                  // e.g. "strncpy"
  float probability = 0.0f;
  /// Top-weighted tokens of this gadget by attention (Fig. 6), pairs of
  /// (token spelling, weight normalized to the max weight).
  std::vector<std::pair<std::string, float>> top_tokens;
  /// Ranked source-line attributions, filled only when
  /// DetectOptions::explain is set. Capture is a pure read-out of the
  /// already-computed attention weights: every other field (and the
  /// model) is byte-identical with or without it.
  std::vector<TokenAttribution> attributions;
  /// CBAM spatial map over the gadget's (padded) token positions,
  /// explain-only; empty when multilayer attention is ablated.
  std::vector<float> spatial_attention;
};

struct DetectOptions {
  int top_k = 10;       // attention tokens / attributions per finding
  bool explain = false; // fill Finding::attributions/spatial_attention
  /// Forward precision for scoring (see models::Precision). fp32 is the
  /// exact reference; fp16/int8 trade bounded score drift for speed (the
  /// quality gate bounds the F1/AUC loss). Applied to the model — and
  /// inherited by its per-worker clones — before scoring.
  models::Precision precision = models::Precision::kFp32;
};

/// One sliced + normalized + encoded gadget of a scan, ready for
/// (possibly micro-batched) inference. The serve daemon prepares
/// gadgets on its request workers, ships `ids` through the cross-request
/// batcher, and assembles Findings from the returned predictions with
/// finding_from_prediction() — the exact helpers detect() itself runs,
/// so a daemon scan is byte-identical to an in-process one.
struct PreparedGadget {
  slicer::SpecialToken token;
  slicer::CodeGadget gadget;
  normalize::NormalizedGadget norm;
  std::vector<int> ids;
  /// PDG projection of the gadget (see graph/gadget_graph.hpp) for graph
  /// backends; sequence backends ignore it.
  graph::GadgetGraph graph;
};

class SeVulDet {
 public:
  explicit SeVulDet(PipelineConfig config);

  /// Full training phase on labeled programs.
  TrainResult train(const std::vector<dataset::TestCase>& programs);

  /// Train directly on a prepared corpus (benches reuse corpora across
  /// models). The corpus must already be encoded.
  TrainResult train_on_corpus(const dataset::Corpus& corpus,
                              const SampleRefs& train_set);

  /// Detection phase on raw source. `top_k` attention tokens per
  /// finding. Honors `config().corpus.threads`: gadgets are sliced,
  /// normalized and classified in parallel chunks on per-worker model
  /// clones, and the findings are identical to a serial scan.
  std::vector<Finding> detect(const std::string& source, int top_k = 10);

  /// Detection with attention provenance: with `options.explain` each
  /// Finding additionally carries ranked (function, line, token, weight)
  /// attributions and the CBAM spatial map. Inference is unchanged —
  /// probabilities, top_tokens, and the model are byte-identical to a
  /// plain detect().
  std::vector<Finding> detect(const std::string& source,
                              const DetectOptions& options);

  /// Probability for a single pre-encoded gadget (used by evaluation).
  float predict(const std::vector<int>& ids) { return model_->predict(ids); }

  /// Detection-phase preprocessing only (Steps I-III + encoding): slice
  /// every special token of `source`, normalize, and encode against the
  /// loaded vocabulary. Gadgets that detect() would drop (empty gadget /
  /// empty token stream) are dropped here too, with the same
  /// `detect.drop.*` counters. Serial; the serve daemon gets its
  /// parallelism across requests instead of within one.
  std::vector<PreparedGadget> prepare(const std::string& source) const;

  /// Same as prepare(), but on an already-built program graph. The scan
  /// frontend parses through the error-resilient recovery path and a
  /// lightweight preprocessor before building the graph, so it cannot
  /// use the parse-from-source entry point above.
  std::vector<PreparedGadget> prepare_program(
      const graph::ProgramGraph& program) const;

  /// Second half of detect() for one prepared gadget: threshold check
  /// (with the detect.drop.below_threshold counter), attention top-k,
  /// and — when `options.explain` — line-level attributions and the
  /// CBAM spatial map out of the captured prediction. Returns nullopt
  /// below threshold. Used by detect() and the serve daemon alike.
  std::optional<Finding> finding_from_prediction(
      const PreparedGadget& prepared, const models::Prediction& prediction,
      const DetectOptions& options) const;

  /// detect()'s final ordering: probability-descending. Exposed so the
  /// daemon sorts its per-request findings identically.
  static void sort_findings(std::vector<Finding>& findings);

  models::Detector& model() { return *model_; }
  const normalize::Vocabulary& vocab() const { return vocab_; }
  const PipelineConfig& config() const { return config_; }
  bool trained() const { return model_ != nullptr; }

  /// Persist / restore the trained detector (vocabulary + parameters).
  /// save() writes the v2 checksummed binary format for the default
  /// "cnn" backend (byte-identical to pre-registry builds) and the v3
  /// format — v2 plus the backend name — for every other backend;
  /// load() reads v3, v2, and the legacy v1 text format (restoring the
  /// recorded backend; v1/v2 imply "cnn") and throws std::runtime_error
  /// on truncated or corrupt files of any version.
  void save(const std::string& path) const;
  void load(const std::string& path);
  /// Legacy v1 text writer, kept so back-compat loading stays testable
  /// (and to measure the v2 speedup in bench/micro_pipeline).
  void save_text_v1(const std::string& path) const;

 private:
  void build_model();
  static std::vector<std::pair<std::string, float>> top_attention_tokens(
      const std::vector<float>& weights, const std::vector<std::string>& tokens,
      int top_k);

  PipelineConfig config_;
  normalize::Vocabulary vocab_;
  std::unique_ptr<models::Detector> model_;
};

}  // namespace sevuldet::core
