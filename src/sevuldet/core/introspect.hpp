// Model & dataset introspection: the evaluation breakdown report behind
// `sevuldet report` and the CI quality gate (tools/check_quality.py).
// run_quality_report() trains a detector on the synthetic SARD-like
// corpus (one deterministic k-fold split), evaluates the held-out fold,
// and collects everything a regression investigation needs in one
// document: per-epoch curves, the confusion matrix, P/R/F1 broken down
// per CWE and per gadget-length bucket, a reliability table with ECE,
// ROC AUC, and the gadget-pipeline drop accounting (every counted
// truncate/skip in slicer/normalize/corpus). The JSON rendering is the
// contract with tools/check_quality.py — bump kReportSchemaVersion on
// breaking changes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/dataset/metrics.hpp"
#include "sevuldet/dataset/sard_generator.hpp"

namespace sevuldet::core {

inline constexpr int kReportSchemaVersion = 1;

struct ReportConfig {
  dataset::SardConfig corpus;    // corpus generator settings
  PipelineConfig pipeline;       // model + training settings
  int folds = 5;                 // k-fold split; the report uses fold 0
  std::uint64_t fold_seed = 17;
  /// Forward precision for the held-out evaluation (training always runs
  /// fp32). `sevuldet report --precision int8` feeds the quality gate's
  /// quantized pass: the F1/AUC floors bound the quantization loss.
  models::Precision precision = models::Precision::kFp32;
};

/// One breakdown row: the binary confusion restricted to a slice of the
/// test fold. For per-CWE rows the positives are the samples of that
/// CWE and the negatives are ALL clean test samples (each CWE row is
/// "this flaw class vs the shared clean background", so clean counts
/// repeat across rows). For length buckets every test sample lands in
/// exactly one row.
struct BreakdownRow {
  std::string key;  // CWE id, or length-bucket label like "21-40"
  dataset::Confusion confusion;
};

struct EvaluationReport {
  // Provenance: which corpus this report measured. The fingerprint is
  // content-addressed (dataset/corpus_io.hpp) and exact across machines;
  // the float metrics below are not, so the gate holds them to floors
  // and tolerances instead of equality.
  std::string corpus_fingerprint;  // 16 hex digits
  long long total_samples = 0;
  long long vulnerable_samples = 0;
  long long train_samples = 0;
  long long test_samples = 0;

  // Training curves (per epoch).
  std::vector<float> epoch_losses;
  std::vector<float> epoch_accuracies;
  double train_seconds = 0.0;

  // Held-out fold evaluation.
  std::string backend = "cnn";     // detector backend the run trained
  std::string precision = "fp32";  // forward precision the fold ran at
  dataset::Confusion confusion;
  double auc = 0.5;
  dataset::Calibration calibration;
  std::vector<BreakdownRow> by_cwe;
  std::vector<BreakdownRow> by_length;

  // Gadget-pipeline drop accounting: every "*.drop.*" counter the run
  // incremented (slicer/normalize/corpus), name -> count.
  std::map<std::string, long long> drops;
};

/// Gadget-length bucket label for a token count (edges 20/40/80).
std::string length_bucket(std::size_t tokens);

/// Run the full generate -> build -> train -> evaluate pipeline and
/// assemble the report. Deterministic for a fixed config (single-
/// threaded word2vec): two runs produce byte-identical JSON apart from
/// the wall-time `training.seconds` field (which the gate never
/// compares).
EvaluationReport run_quality_report(const ReportConfig& config);

/// Serialize for tools/check_quality.py (schema_version, corpus,
/// training, evaluation, calibration, drops).
std::string report_to_json(const EvaluationReport& report);

/// Human-readable rendering: aligned tables (util/table) for the
/// breakdowns plus the headline metrics.
std::string report_summary(const EvaluationReport& report);

/// Serialize `sevuldet explain` findings — ranked per-token attributions
/// with (file, function, line) provenance and the CBAM spatial map.
std::string explanations_to_json(const std::string& file,
                                 const std::vector<Finding>& findings);

/// `sevuldet report --compare cnn,gat`: one full quality report per
/// backend over the SAME corpus and the SAME fold (corpus generation and
/// the k-fold split are deterministic in the config seeds, so every
/// backend trains and evaluates on identical sample sets — the runs
/// differ only in the detector).
struct ComparisonReport {
  std::vector<EvaluationReport> runs;  // one per backend, input order
};

/// Run run_quality_report once per backend name. Throws
/// std::invalid_argument on an unknown backend.
ComparisonReport run_comparison_report(const ReportConfig& config,
                                       const std::vector<std::string>& backends);

/// {"schema_version": ..., "runs": [<report json>, ...]}.
std::string comparison_to_json(const ComparisonReport& comparison);

/// Side-by-side headline table (backend, F1, AUC, P, R, train seconds).
std::string comparison_summary(const ComparisonReport& comparison);

}  // namespace sevuldet::core
