// Training and evaluation loops shared by every detector (SEVulDet, the
// RQ1/RQ2 ablations, and the VulDeePecker/SySeVR stand-ins). Per-sample
// Adam on binary cross-entropy with optional positive-class weighting —
// the corpora are imbalanced (Table I: 5-10% vulnerable) and the paper
// trains on the imbalanced data directly.
#pragma once

#include <vector>

#include "sevuldet/dataset/corpus.hpp"
#include "sevuldet/dataset/metrics.hpp"
#include "sevuldet/models/model.hpp"

namespace sevuldet::core {

struct TrainConfig {
  int epochs = 4;
  float lr = 0.001f;
  float grad_clip = 5.0f;
  /// Loss multiplier for label-1 samples; <= 0 means "derive from class
  /// balance" (neg/pos, capped at 10).
  float pos_weight = 0.0f;
  std::uint64_t seed = 7;
  bool verbose = false;
};

struct TrainResult {
  std::vector<float> epoch_losses;  // mean loss per epoch
  /// Fraction of training samples classified correctly at the model's
  /// threshold, per epoch — read off the logits the train step already
  /// computes (train-mode forward, so dropout noise is included; no
  /// extra passes, and the optimization trajectory is unchanged).
  std::vector<float> epoch_accuracies;
  double seconds = 0.0;
  std::size_t samples = 0;
};

using SampleRefs = std::vector<const dataset::GadgetSample*>;

/// Collect pointers to a subset of corpus samples.
SampleRefs sample_refs(const dataset::Corpus& corpus,
                       const std::vector<std::size_t>& idx);
SampleRefs all_sample_refs(const dataset::Corpus& corpus);

/// Restrict to one category ("FC-only" for the VulDeePecker comparison).
SampleRefs filter_category(const SampleRefs& refs, slicer::TokenCategory category);

TrainResult train_detector(models::Detector& detector, const SampleRefs& train,
                           const TrainConfig& config);

/// Confusion at the detector's configured threshold. With threads > 1
/// (0 = all hardware threads) the test set is split into contiguous
/// chunks classified on per-worker model clones; since evaluation runs
/// the deterministic eval-mode forward pass and Confusion only sums
/// counts, the result is identical to the serial path.
dataset::Confusion evaluate_detector(models::Detector& detector,
                                     const SampleRefs& test, int threads = 1);

}  // namespace sevuldet::core
