// Real-world scan frontend: zero-copy file ingestion (util/mmap_file),
// lightweight preprocessing (frontend/preprocess), error-resilient
// parsing (frontend/recover) and parallel per-file scanning over a
// directory tree. Unlike detect(), which expects a single well-formed
// translation unit, this path is built for code as it exists in real
// repositories: unresolved includes, macros, conditional compilation,
// and constructs the toy C parser rejects. Nothing is silently lost —
// regions that resist even recovery are degraded to the lex-fallback
// gadget path, and every drop is counted (frontend.drop.*, scan.*) so
// the CI drop-rate gate sees it.
//
// Determinism: a file's result depends only on its own bytes and the
// model (eval-mode forwards are deterministic), and the tree merge is
// by sorted path index — so a parallel scan is byte-identical to a
// serial one, and a daemon tree scan is byte-identical to in-process.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sevuldet/core/pipeline.hpp"
#include "sevuldet/frontend/preprocess.hpp"

namespace sevuldet::core {

struct ScanOptions {
  DetectOptions detect;
  /// Preprocessor knobs. include_roots empty => the scan root (for
  /// scan_tree) or the file's directory (for scan_file). current_dir is
  /// filled per file.
  frontend::PreprocessOptions preprocess;
  bool run_preprocessor = true;
  /// Worker threads for scan_tree (0 = config().corpus.threads rules,
  /// which itself treats <= 0 as all cores). Results are identical for
  /// any thread count.
  int threads = 0;
  /// File extensions scan_tree picks up.
  std::vector<std::string> extensions = {".c", ".h"};
};

/// Per-file frontend accounting. "Lines" are physical lines of the
/// preprocessed text, so lost-region line counts line up exactly.
struct FileScanStats {
  bool preprocessed = false;    // preprocessor changed the bytes
  bool parse_clean = true;      // full parse succeeded first try
  int chunks_total = 0;         // recovery chunks attempted
  int chunks_recovered = 0;     // recovery chunks that parsed
  int lost_regions = 0;         // chunks that resisted recovery
  int lines_total = 0;
  int lines_lost = 0;           // lines inside lost regions
  int fallback_gadgets = 0;     // pseudo-gadgets built from lost regions
  int fallback_findings = 0;    // findings those produced
  int findings_dropped_include = 0;  // findings on include-origin lines
  frontend::PreprocessStats preprocess;
};

struct FileScanResult {
  std::string path;   // as given (relative to the root for tree scans)
  bool ok = true;     // false: file unreadable, `error` says why
  std::string error;
  std::vector<Finding> findings;  // lines in original-file coordinates
  FileScanStats stats;
};

struct TreeScanStats {
  int files = 0;            // files scanned (including failed ones)
  int files_failed = 0;     // unreadable
  int files_recovered = 0;  // needed chunk recovery
  long long bytes = 0;
  int findings = 0;
  int fallback_findings = 0;
  int lines_total = 0;
  int lines_lost = 0;
  int includes_resolved = 0;
  int includes_unresolved = 0;
  int macro_expansions = 0;
  int conditionals = 0;
  int unresolved_conditionals = 0;
  /// lines_lost / lines_total — the share of scanned code the parser
  /// dropped even after recovery (those lines still get the fallback
  /// gadget treatment).
  double parse_drop_rate = 0.0;
  /// Unresolved includes + unparseable conditionals over all constructs
  /// the preprocessor faced.
  double preprocess_drop_rate = 0.0;
};

struct TreeScanResult {
  std::string root;
  std::vector<FileScanResult> files;  // sorted by relative path
  TreeScanStats stats;
};

/// Files under `root` (recursive) with one of `extensions`, as sorted
/// root-relative paths — the deterministic work list of scan_tree.
std::vector<std::string> list_scan_files(
    const std::string& root, const std::vector<std::string>& extensions);

/// Scan one in-memory buffer; `label` is the path reported in results.
FileScanResult scan_source(SeVulDet& detector, const std::string& label,
                           std::string_view source,
                           const ScanOptions& options = {});

/// Scan one file via mmap (heap fallback for unmappable files).
FileScanResult scan_file(SeVulDet& detector, const std::string& path,
                         const ScanOptions& options = {});

/// Scan every matching file under `root`, fanned out per file on a
/// util::ThreadPool with per-worker model clones. Findings and stats
/// are byte-identical to a serial scan.
TreeScanResult scan_tree(SeVulDet& detector, const std::string& root,
                         const ScanOptions& options = {});

}  // namespace sevuldet::core
