// Control-range analysis for Algorithm 1 (steps a-d): identify *key
// nodes* — the eight control statements if / else if / else / for /
// while / do-while / switch / case — compute the source-line range each
// controls from its AST subtree, bind adjacent ranges with semantic
// relevance (if + else-if + else chains, switch + case), and fix the
// range end lines with a brace-matching stack over the raw source
// (Algorithm 1 lines 15-18).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sevuldet/frontend/ast.hpp"

namespace sevuldet::slicer {

enum class RangeKind { If, ElseIf, Else, For, While, DoWhile, Switch, Case };

const char* range_kind_name(RangeKind kind);

struct ControlRange {
  RangeKind kind = RangeKind::If;
  int key_line = 0;    // line of the key node header ("if (...)", "} else {")
  int begin_line = 0;  // first line controlled (== key_line)
  int end_line = 0;    // last line controlled (closing brace / last stmt)
  int group = -1;      // bound-group id: chains share one group

  bool contains(int line) const { return line >= begin_line && line <= end_line; }
};

/// All control ranges of one function, in source order. `source_lines`
/// (1-based via index+1, trimmed) feeds the brace-stack end-line fix;
/// pass an empty vector to skip the fix (AST ranges only).
std::vector<ControlRange> compute_control_ranges(
    const frontend::FunctionDef& fn, const std::vector<std::string>& source_lines);

/// Stack-based symbolic brace matching over raw source: maps each line
/// that opens a '{' to the line of its matching '}'. Later opens on the
/// same line win (the map holds the outermost pair per line).
std::map<int, int> match_braces(const std::vector<std::string>& source_lines);

}  // namespace sevuldet::slicer
