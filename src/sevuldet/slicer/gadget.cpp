#include "sevuldet/slicer/gadget.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::slicer {

std::string CodeGadget::text() const {
  std::string out;
  for (const auto& line : lines) {
    out += line.text;
    out += '\n';
  }
  return out;
}

namespace {

/// Order sliced functions so callers precede callees, starting from the
/// criterion's function (Algorithm 1 lines 32-36 order the gadget by the
/// call relationship).
std::vector<std::string> order_functions(const graph::ProgramGraph& program,
                                         const Slice& slice,
                                         const std::string& criterion_fn) {
  std::vector<std::string> sliced = slice.fn_order;
  if (sliced.empty()) return sliced;

  // Repeatedly hoist callers above their callees (small n, simple and
  // deterministic); ties keep discovery order.
  auto calls = [&](const std::string& a, const std::string& b) {
    for (const auto& edge : program.calls) {
      if (edge.caller == a && edge.callee == b) return true;
    }
    return false;
  };
  std::vector<std::string> ordered;
  std::set<std::string> remaining(sliced.begin(), sliced.end());
  while (!remaining.empty()) {
    // Pick a function with no un-emitted caller; prefer the criterion's
    // own component by scanning discovery order.
    std::string pick;
    for (const auto& fn : sliced) {
      if (!remaining.contains(fn)) continue;
      bool has_caller = false;
      for (const auto& other : remaining) {
        if (other != fn && calls(other, fn)) {
          has_caller = true;
          break;
        }
      }
      if (!has_caller) {
        pick = fn;
        break;
      }
    }
    if (pick.empty()) pick = *remaining.begin();  // cycle fallback
    ordered.push_back(pick);
    remaining.erase(pick);
  }
  (void)criterion_fn;
  return ordered;
}

}  // namespace

CodeGadget generate_gadget(const graph::ProgramGraph& program,
                           const SpecialToken& token,
                           const GadgetOptions& options) {
  util::trace::ScopedSpan span("slice");
  CodeGadget gadget;
  gadget.token = token;
  gadget.path_sensitive = options.path_sensitive;

  Slice slice = compute_slice(program, token.function, token.unit, options.slice);
  if (slice.units_by_fn.empty()) {
    util::metrics::counter_add("slicer.drop.empty_slice");
    return gadget;
  }

  std::vector<std::string> fn_order = order_functions(program, slice, token.function);

  for (const auto& fn_name : fn_order) {
    const graph::FunctionPdg* pdg = program.pdg_of(fn_name);
    if (pdg == nullptr) {
      util::metrics::counter_add("slicer.drop.missing_pdg");
      continue;
    }
    const auto& unit_ids = slice.units_by_fn.at(fn_name);

    // Sliced statement lines.
    std::set<int> stmt_lines;
    for (int id : unit_ids) {
      stmt_lines.insert(pdg->units[static_cast<std::size_t>(id)].line);
    }

    // Algorithm 1 steps e-f: pick every bound control-range group a
    // sliced statement passes through and add its boundary lines.
    std::set<int> boundary_lines;
    if (options.path_sensitive) {
      auto ranges = compute_control_ranges(*pdg->fn, program.source_lines);
      util::metrics::counter_add("slicer.control_ranges",
                                 static_cast<long long>(ranges.size()));
      std::set<int> selected_groups;
      for (const auto& range : ranges) {
        for (int line : stmt_lines) {
          if (range.contains(line)) {
            selected_groups.insert(range.group);
            break;
          }
        }
      }
      for (const auto& range : ranges) {
        if (!selected_groups.contains(range.group)) continue;
        if (!stmt_lines.contains(range.key_line)) {
          boundary_lines.insert(range.key_line);
        }
        if (!stmt_lines.contains(range.end_line)) {
          boundary_lines.insert(range.end_line);
        }
      }
    }

    std::set<int> all_lines = stmt_lines;
    all_lines.insert(boundary_lines.begin(), boundary_lines.end());
    for (int line : all_lines) {
      GadgetLine gl;
      gl.function = fn_name;
      gl.line = line;
      gl.text = program.line_text(line);
      gl.is_boundary = boundary_lines.contains(line);
      if (gl.text.empty()) {
        // Source text unavailable (e.g. PDG built without source):
        // fall back to the rendered unit text.
        for (int id : unit_ids) {
          const auto& unit = pdg->units[static_cast<std::size_t>(id)];
          if (unit.line == line) {
            gl.text = unit.text;
            break;
          }
        }
      }
      if (!gl.text.empty()) {
        gadget.lines.push_back(std::move(gl));
      } else {
        util::metrics::counter_add("slicer.drop.missing_line_text");
      }
    }
  }
  if (!gadget.lines.empty()) {
    util::metrics::counter_add("slicer.gadgets_emitted");
    util::metrics::counter_add("slicer.gadget_lines",
                               static_cast<long long>(gadget.lines.size()));
  } else {
    util::metrics::counter_add("slicer.drop.empty_gadget");
  }
  return gadget;
}

std::vector<CodeGadget> generate_gadgets(const graph::ProgramGraph& program,
                                         const GadgetOptions& options) {
  std::vector<CodeGadget> out;
  for (const auto& token : find_special_tokens(program)) {
    CodeGadget gadget = generate_gadget(program, token, options);
    if (!gadget.lines.empty()) out.push_back(std::move(gadget));
  }
  return out;
}

std::vector<CodeGadget> generate_gadgets(const graph::ProgramGraph& program,
                                         TokenCategory category,
                                         const GadgetOptions& options) {
  std::vector<CodeGadget> out;
  for (const auto& token : find_special_tokens(program, category)) {
    CodeGadget gadget = generate_gadget(program, token, options);
    if (!gadget.lines.empty()) out.push_back(std::move(gadget));
  }
  return out;
}

}  // namespace sevuldet::slicer
