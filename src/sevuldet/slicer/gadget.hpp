// Code-gadget assembly. Two flavours:
//  - CG  (Definition 5): the sliced statements stacked in line order per
//    function, functions ordered by call relationship — the baseline used
//    by VulDeePecker/SySeVR and by the paper's "CG" rows in Table II.
//  - PS-CG (Definition 7, Algorithm 1 steps e-f): additionally selects
//    every bound control-range group a sliced statement passes through
//    and inserts the range header lines ("} else {") and endpoint lines
//    ("}") so the path to the special token is unambiguous (Fig. 3's
//    nodes 4/13/16/17/21/23).
#pragma once

#include <string>
#include <vector>

#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/slicer/control_ranges.hpp"
#include "sevuldet/slicer/slice.hpp"
#include "sevuldet/slicer/special_tokens.hpp"

namespace sevuldet::slicer {

struct GadgetLine {
  std::string function;
  int line = 0;          // source line number
  std::string text;      // trimmed source text of that line
  bool is_boundary = false;  // inserted by Algorithm 1 (range header/endpoint)
};

struct CodeGadget {
  SpecialToken token;
  bool path_sensitive = false;
  std::vector<GadgetLine> lines;
  int label = -1;  // 1 vulnerable / 0 clean / -1 unknown (Step II fills it)

  /// One line of text per gadget line, '\n'-joined — the unit the
  /// normalizer (Step III) and the embedding (Step IV) consume.
  std::string text() const;
};

struct GadgetOptions {
  SliceOptions slice;
  bool path_sensitive = true;
};

/// Generate the gadget for one special token.
CodeGadget generate_gadget(const graph::ProgramGraph& program,
                           const SpecialToken& token,
                           const GadgetOptions& options = {});

/// Generate gadgets for every special token of the program (optionally
/// restricted to one category).
std::vector<CodeGadget> generate_gadgets(const graph::ProgramGraph& program,
                                         const GadgetOptions& options = {});
std::vector<CodeGadget> generate_gadgets(const graph::ProgramGraph& program,
                                         TokenCategory category,
                                         const GadgetOptions& options = {});

}  // namespace sevuldet::slicer
