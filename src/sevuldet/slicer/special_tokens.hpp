// Step I.2 of the paper: identify the four kinds of *special tokens*
// (Definition 4) that seed slicing — library/API function calls (FC),
// array usage (AU), pointer usage (PU), and arithmetic expressions (AE),
// following the SySeVR syntax characteristics the paper adopts.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sevuldet/graph/pdg.hpp"

namespace sevuldet::slicer {

enum class TokenCategory { FunctionCall, ArrayUsage, PointerUsage, ArithExpr };

const char* category_name(TokenCategory c);       // "FC", "AU", "PU", "AE"
const char* category_long_name(TokenCategory c);  // "Library/API function call"...

/// Inverse of category_name ("FC" -> FunctionCall, ...); throws
/// std::invalid_argument on an unknown spelling. Used by the serve
/// protocol to parse findings back off the wire.
TokenCategory category_from_name(const std::string& name);

struct SpecialToken {
  TokenCategory category = TokenCategory::FunctionCall;
  std::string function;  // enclosing function name
  int unit = -1;         // unit id within that function's PDG
  int line = 0;
  std::string text;      // the token itself, e.g. "strncpy", "buf", "n + m"
};

/// True if `callee` is treated as a library/API function (C standard
/// library and common POSIX names, or any function not defined in the
/// translation unit when `unit` is given).
bool is_library_function(std::string_view callee);

/// True if the callee is on the "risky" sublist classical lexical tools
/// flag (strcpy, gets, sprintf, ...). Used by the baseline scanners too.
bool is_risky_library_function(std::string_view callee);

/// All special tokens of a program, in (function, unit, category) order.
/// At most one token per (unit, category) pair, mirroring how the paper
/// generates one gadget per special token occurrence statement.
std::vector<SpecialToken> find_special_tokens(const graph::ProgramGraph& program);

/// Restrict to one category.
std::vector<SpecialToken> find_special_tokens(const graph::ProgramGraph& program,
                                              TokenCategory category);

}  // namespace sevuldet::slicer
