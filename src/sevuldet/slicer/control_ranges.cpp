#include "sevuldet/slicer/control_ranges.hpp"

#include <algorithm>

namespace sevuldet::slicer {

using frontend::Stmt;
using frontend::StmtKind;

const char* range_kind_name(RangeKind kind) {
  switch (kind) {
    case RangeKind::If: return "if";
    case RangeKind::ElseIf: return "else-if";
    case RangeKind::Else: return "else";
    case RangeKind::For: return "for";
    case RangeKind::While: return "while";
    case RangeKind::DoWhile: return "do-while";
    case RangeKind::Switch: return "switch";
    case RangeKind::Case: return "case";
  }
  return "?";
}

std::map<int, int> match_braces(const std::vector<std::string>& source_lines) {
  std::map<int, int> out;
  std::vector<int> stack;  // line numbers of unmatched '{'
  bool in_string = false, in_char = false, in_block_comment = false;
  for (std::size_t idx = 0; idx < source_lines.size(); ++idx) {
    const std::string& line = source_lines[idx];
    const int line_no = static_cast<int>(idx) + 1;
    for (std::size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      if (in_block_comment) {
        if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (in_char) {
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          in_char = false;
        }
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (c == '"') {
        in_string = true;
        continue;
      }
      if (c == '\'') {
        in_char = true;
        continue;
      }
      if (c == '{') {
        stack.push_back(line_no);
      } else if (c == '}') {
        if (!stack.empty()) {
          int open = stack.back();
          stack.pop_back();
          // Keep the outermost pair opened on that line.
          auto it = out.find(open);
          if (it == out.end() || it->second < line_no) out[open] = line_no;
        }
      }
    }
    in_string = in_char = false;  // strings/chars do not span lines in C
  }
  return out;
}

namespace {

class RangeCollector {
 public:
  explicit RangeCollector(const std::map<int, int>& braces) : braces_(braces) {}

  std::vector<ControlRange> run(const Stmt& body) {
    walk(body);
    std::sort(ranges_.begin(), ranges_.end(),
              [](const ControlRange& a, const ControlRange& b) {
                if (a.begin_line != b.begin_line) return a.begin_line < b.begin_line;
                return a.end_line > b.end_line;
              });
    return std::move(ranges_);
  }

 private:
  int new_group() { return next_group_++; }

  void add_range(RangeKind kind, int key_line, int begin, int end, int group) {
    // Algorithm 1 lines 15-18: correct the end with the brace stack —
    // if a '{' opens at the key line (or the line after, Allman style),
    // extend the range to the matching '}'.
    for (int probe = key_line; probe <= key_line + 1; ++probe) {
      auto it = braces_.find(probe);
      if (it != braces_.end()) end = std::max(end, it->second);
    }
    ranges_.push_back({kind, key_line, begin, end, group});
  }

  /// Handle an if / else-if / else chain, binding all branches into one
  /// group (Algorithm 1 lines 9-11).
  void walk_if_chain(const Stmt& stmt, int group) {
    const Stmt& then_body = *stmt.children[0];
    add_range(group_has_members_ ? RangeKind::ElseIf : RangeKind::If,
              stmt.range.begin_line, stmt.range.begin_line,
              then_body.range.end_line, group);
    group_has_members_ = true;
    walk(then_body);
    if (stmt.children.size() > 1) {
      const Stmt& else_body = *stmt.children[1];
      if (else_body.kind == StmtKind::If) {
        walk_if_chain(else_body, group);  // "else if"
      } else {
        add_range(RangeKind::Else, else_body.range.begin_line,
                  else_body.range.begin_line, else_body.range.end_line, group);
        walk(else_body);
      }
    }
  }

  void walk(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::Compound:
      case StmtKind::Label:
        for (const auto& child : stmt.children) walk(*child);
        return;
      case StmtKind::If: {
        bool saved = group_has_members_;
        group_has_members_ = false;
        walk_if_chain(stmt, new_group());
        group_has_members_ = saved;
        return;
      }
      case StmtKind::For: {
        add_range(RangeKind::For, stmt.range.begin_line, stmt.range.begin_line,
                  stmt.range.end_line, new_group());
        walk(*stmt.children[stmt.for_has_init ? 1 : 0]);
        return;
      }
      case StmtKind::While:
        add_range(RangeKind::While, stmt.range.begin_line, stmt.range.begin_line,
                  stmt.range.end_line, new_group());
        walk(*stmt.children[0]);
        return;
      case StmtKind::DoWhile:
        add_range(RangeKind::DoWhile, stmt.range.begin_line, stmt.range.begin_line,
                  stmt.range.end_line, new_group());
        walk(*stmt.children[0]);
        return;
      case StmtKind::Switch: {
        int group = new_group();
        add_range(RangeKind::Switch, stmt.range.begin_line, stmt.range.begin_line,
                  stmt.range.end_line, group);
        for (const auto& child : stmt.children) {
          if (child->kind == StmtKind::Case) {
            add_range(RangeKind::Case, child->range.begin_line,
                      child->range.begin_line, child->range.end_line, group);
            for (const auto& inner : child->children) walk(*inner);
          } else {
            walk(*child);
          }
        }
        return;
      }
      default:
        return;  // simple statements carry no control range
    }
  }

  const std::map<int, int>& braces_;
  std::vector<ControlRange> ranges_;
  int next_group_ = 0;
  bool group_has_members_ = false;
};

}  // namespace

std::vector<ControlRange> compute_control_ranges(
    const frontend::FunctionDef& fn, const std::vector<std::string>& source_lines) {
  std::map<int, int> braces =
      source_lines.empty() ? std::map<int, int>{} : match_braces(source_lines);
  return RangeCollector(braces).run(*fn.body);
}

}  // namespace sevuldet::slicer
