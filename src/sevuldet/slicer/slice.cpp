#include "sevuldet/slicer/slice.hpp"

#include <deque>

namespace sevuldet::slicer {

namespace {

enum class Direction { Backward, Forward, Both };

struct WorkItem {
  const graph::FunctionPdg* pdg;
  int unit;
  Direction dir;
  int depth;  // remaining call-crossing budget
};

class Slicer {
 public:
  Slicer(const graph::ProgramGraph& program, const SliceOptions& options)
      : program_(program), options_(options) {}

  Slice run(const std::string& fn, int unit, Direction dir) {
    const graph::FunctionPdg* pdg = program_.pdg_of(fn);
    if (pdg == nullptr || unit < 0 ||
        static_cast<std::size_t>(unit) >= pdg->units.size()) {
      return {};
    }
    push(pdg, unit, dir, options_.max_call_depth);
    while (!work_.empty()) {
      WorkItem item = work_.front();
      work_.pop_front();
      expand(item);
    }
    return std::move(slice_);
  }

 private:
  void push(const graph::FunctionPdg* pdg, int unit, Direction dir, int depth) {
    auto key = std::make_tuple(pdg, unit, dir);
    if (!visited_.insert(key).second) return;
    auto& units = slice_.units_by_fn[pdg->fn->name];
    if (units.empty()) slice_.fn_order.push_back(pdg->fn->name);
    units.insert(unit);
    work_.push_back({pdg, unit, dir, depth});
  }

  void expand(const WorkItem& item) {
    const auto& pdg = *item.pdg;
    const std::size_t u = static_cast<std::size_t>(item.unit);

    if (item.dir == Direction::Backward || item.dir == Direction::Both) {
      for (int d : pdg.data.deps[u]) {
        push(item.pdg, d, Direction::Backward, item.depth);
      }
      if (options_.use_control_dep) {
        for (int c : pdg.control.deps[u]) {
          push(item.pdg, c, Direction::Backward, item.depth);
        }
      }
    }
    if (item.dir == Direction::Forward || item.dir == Direction::Both) {
      for (int d : pdg.data.dependents[u]) {
        push(item.pdg, d, Direction::Forward, item.depth);
      }
    }

    if (options_.interprocedural && item.depth > 0) {
      cross_calls(item);
    }
  }

  void cross_calls(const WorkItem& item) {
    const auto& pdg = *item.pdg;
    const auto& unit = pdg.units[static_cast<std::size_t>(item.unit)];

    // Into callees: the sliced statement calls a function defined here.
    for (const auto& callee_name : unit.use_def.calls) {
      const graph::FunctionPdg* callee = program_.pdg_of(callee_name);
      if (callee == nullptr) continue;
      for (const auto& cu : callee->units) {
        bool uses_param = false;
        for (const auto& p : callee->fn->params) {
          if (!p.name.empty() && cu.use_def.uses.contains(p.name)) {
            uses_param = true;
            break;
          }
        }
        // Forward: statements consuming the arguments (parameters).
        if (uses_param) {
          push(callee, cu.id, Direction::Forward, item.depth - 1);
          // The callee may guard/transform the data before using it;
          // pull in its backward context too so the gadget is coherent.
          push(callee, cu.id, Direction::Backward, item.depth - 1);
        }
        // Backward: statements feeding the return value.
        if (cu.kind == graph::UnitKind::Return &&
            (item.dir == Direction::Backward || item.dir == Direction::Both)) {
          push(callee, cu.id, Direction::Backward, item.depth - 1);
        }
      }
    }

    // Into callers: the criterion depends on parameters -> extend through
    // every call site's arguments.
    bool touches_param = false;
    for (const auto& p : pdg.fn->params) {
      if (p.name.empty()) continue;
      if (unit.use_def.uses.contains(p.name) || unit.use_def.defs.contains(p.name)) {
        touches_param = true;
        break;
      }
    }
    if (touches_param) {
      for (const auto& edge : program_.calls) {
        if (edge.callee != pdg.fn->name) continue;
        const graph::FunctionPdg* caller = program_.pdg_of(edge.caller);
        if (caller == nullptr) continue;
        push(caller, edge.caller_unit, Direction::Backward, item.depth - 1);
        if (item.dir == Direction::Forward || item.dir == Direction::Both) {
          push(caller, edge.caller_unit, Direction::Forward, item.depth - 1);
        }
      }
    }
  }

  const graph::ProgramGraph& program_;
  const SliceOptions& options_;
  Slice slice_;
  std::set<std::tuple<const graph::FunctionPdg*, int, Direction>> visited_;
  std::deque<WorkItem> work_;
};

}  // namespace

Slice compute_slice(const graph::ProgramGraph& program, const std::string& fn,
                    int unit, const SliceOptions& options) {
  return Slicer(program, options).run(fn, unit, Direction::Both);
}

Slice compute_backward_slice(const graph::ProgramGraph& program,
                             const std::string& fn, int unit,
                             const SliceOptions& options) {
  return Slicer(program, options).run(fn, unit, Direction::Backward);
}

Slice compute_forward_slice(const graph::ProgramGraph& program,
                            const std::string& fn, int unit,
                            const SliceOptions& options) {
  return Slicer(program, options).run(fn, unit, Direction::Forward);
}

}  // namespace sevuldet::slicer
