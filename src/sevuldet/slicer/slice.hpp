// Step I.3: forward and backward program slices over the PDG from a
// special token's statement, crossing function boundaries along call
// edges (the paper's slices span the calling relationship in Fig. 1
// Step II). Backward slicing follows data- and control-dependence
// predecessors; forward slicing follows data-dependence successors —
// the VulDeePecker/SySeVR convention the paper builds on.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sevuldet/graph/pdg.hpp"

namespace sevuldet::slicer {

struct SliceOptions {
  bool use_control_dep = true;   // false = VulDeePecker-style data-only
  bool interprocedural = true;
  int max_call_depth = 3;        // bound on caller/callee expansion
};

/// A program slice: per-function sets of unit ids plus the order in
/// which functions were reached (criterion's function first, then
/// callees/callers in discovery order — used for gadget assembly).
struct Slice {
  std::map<std::string, std::set<int>> units_by_fn;
  std::vector<std::string> fn_order;

  bool contains(const std::string& fn, int unit) const {
    auto it = units_by_fn.find(fn);
    return it != units_by_fn.end() && it->second.contains(unit);
  }
  std::size_t total_units() const {
    std::size_t n = 0;
    for (const auto& [fn, units] : units_by_fn) n += units.size();
    return n;
  }
};

/// Union of forward and backward slices from `unit` of function `fn`.
Slice compute_slice(const graph::ProgramGraph& program, const std::string& fn,
                    int unit, const SliceOptions& options = {});

/// Backward-only / forward-only variants (exposed for tests and for the
/// baseline detectors).
Slice compute_backward_slice(const graph::ProgramGraph& program,
                             const std::string& fn, int unit,
                             const SliceOptions& options = {});
Slice compute_forward_slice(const graph::ProgramGraph& program,
                            const std::string& fn, int unit,
                            const SliceOptions& options = {});

}  // namespace sevuldet::slicer
