#include "sevuldet/slicer/special_tokens.hpp"

#include <stdexcept>
#include <unordered_set>

#include "sevuldet/frontend/ast_text.hpp"

namespace sevuldet::slicer {

using frontend::Expr;
using frontend::ExprKind;

const char* category_name(TokenCategory c) {
  switch (c) {
    case TokenCategory::FunctionCall: return "FC";
    case TokenCategory::ArrayUsage: return "AU";
    case TokenCategory::PointerUsage: return "PU";
    case TokenCategory::ArithExpr: return "AE";
  }
  return "?";
}

TokenCategory category_from_name(const std::string& name) {
  if (name == "FC") return TokenCategory::FunctionCall;
  if (name == "AU") return TokenCategory::ArrayUsage;
  if (name == "PU") return TokenCategory::PointerUsage;
  if (name == "AE") return TokenCategory::ArithExpr;
  throw std::invalid_argument("unknown token category: " + name);
}

const char* category_long_name(TokenCategory c) {
  switch (c) {
    case TokenCategory::FunctionCall: return "Library/API function call";
    case TokenCategory::ArrayUsage: return "Array usage";
    case TokenCategory::PointerUsage: return "Pointer usage";
    case TokenCategory::ArithExpr: return "Arithmetic expression";
  }
  return "?";
}

bool is_library_function(std::string_view callee) {
  static const std::unordered_set<std::string_view> kLibrary = {
      "strcpy",  "strncpy", "strcat",  "strncat", "strlen",  "strcmp",
      "strncmp", "strchr",  "strrchr", "strstr",  "strtok",  "strdup",
      "memcpy",  "memmove", "memset",  "memcmp",  "memchr",  "malloc",
      "calloc",  "realloc", "free",    "alloca",  "printf",  "fprintf",
      "sprintf", "snprintf","vsprintf","scanf",   "sscanf",  "fscanf",
      "gets",    "fgets",   "puts",    "fputs",   "getchar", "putchar",
      "fopen",   "fclose",  "fread",   "fwrite",  "fseek",   "ftell",
      "read",    "write",   "open",    "close",   "recv",    "send",
      "recvfrom","sendto",  "socket",  "bind",    "listen",  "accept",
      "atoi",    "atol",    "strtol",  "strtoul", "abs",     "exit",
      "abort",   "system",  "popen",   "execl",   "execv",   "getenv",
      "setenv",  "rand",    "srand",   "time",    "getcwd",  "realpath",
      "wcscpy",  "wcsncpy", "swprintf","wcslen",  "wcscat",  "wcsncat",
      "qemu_get_buffer", "cpu_physical_memory_read", "dma_memory_read",
  };
  return kLibrary.contains(callee);
}

bool is_risky_library_function(std::string_view callee) {
  static const std::unordered_set<std::string_view> kRisky = {
      "strcpy", "strcat", "sprintf", "vsprintf", "gets",  "scanf",
      "sscanf", "strncpy","strncat", "memcpy",   "memmove","memset",
      "alloca", "system", "popen",   "execl",    "execv", "realpath",
      "getcwd", "snprintf","read",   "recv",     "wcscpy","wcsncpy",
  };
  return kRisky.contains(callee);
}

namespace {

struct Finder {
  const graph::ProgramGraph& program;
  std::vector<SpecialToken> out{};

  // Per-unit flags so each (unit, category) produces at most one token.
  bool saw_fc = false, saw_au = false, saw_pu = false, saw_ae = false;
  std::string fc_text{}, au_text{}, pu_text{}, ae_text{};

  void scan_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::Call:
        if (!e.text.empty() &&
            (is_library_function(e.text) ||
             program.unit.find_function(e.text) == nullptr)) {
          if (!saw_fc) {
            saw_fc = true;
            fc_text = e.text;
          }
        }
        break;
      case ExprKind::Index:
        if (!saw_au) {
          saw_au = true;
          const Expr* base = e.children[0].get();
          au_text = base->kind == ExprKind::Ident ? base->text
                                                  : frontend::expr_text(*base);
        }
        break;
      case ExprKind::Unary:
        if (e.op == "*" && !saw_pu) {
          saw_pu = true;
          pu_text = frontend::expr_text(*e.children[0]);
        }
        break;
      case ExprKind::Member:
        if (e.op == "->" && !saw_pu) {
          saw_pu = true;
          pu_text = frontend::expr_text(*e.children[0]);
        }
        break;
      case ExprKind::Binary:
        if ((e.op == "+" || e.op == "-" || e.op == "*" || e.op == "/" ||
             e.op == "%" || e.op == "<<" || e.op == ">>") &&
            !saw_ae) {
          saw_ae = true;
          ae_text = frontend::expr_text(e);
        }
        break;
      case ExprKind::Assign:
        if (e.op.size() > 1 && e.op != "==" && !saw_ae) {  // += -= *= ...
          saw_ae = true;
          ae_text = frontend::expr_text(e);
        }
        break;
      default:
        break;
    }
    for (const auto& child : e.children) scan_expr(*child);
  }

  void scan_unit(const graph::FunctionPdg& pdg, const graph::StmtUnit& unit) {
    saw_fc = saw_au = saw_pu = saw_ae = false;
    const frontend::Stmt& stmt = *unit.stmt;
    // Only the statement's own expressions — children are other units.
    if (stmt.kind == frontend::StmtKind::Decl) {
      auto scan_decl = [this](const frontend::Stmt& d) {
        // Pointer declarations with initializers count as pointer usage.
        if (d.decl_is_pointer && d.for_has_init && !saw_pu) {
          saw_pu = true;
          pu_text = d.name;
        }
        std::size_t from = 0;
        if (d.for_has_init) {
          scan_expr(*d.exprs[0]);
          from = 1;
        }
        for (std::size_t i = from; i < d.exprs.size(); ++i) scan_expr(*d.exprs[i]);
      };
      scan_decl(stmt);
      for (const auto& extra : stmt.children) {
        if (extra->kind == frontend::StmtKind::Decl) scan_decl(*extra);
      }
    } else {
      for (const auto& e : stmt.exprs) scan_expr(*e);
    }

    auto emit = [&](TokenCategory cat, const std::string& text) {
      out.push_back({cat, pdg.fn->name, unit.id, unit.line, text});
    };
    if (saw_fc) emit(TokenCategory::FunctionCall, fc_text);
    if (saw_au) emit(TokenCategory::ArrayUsage, au_text);
    if (saw_pu) emit(TokenCategory::PointerUsage, pu_text);
    if (saw_ae) emit(TokenCategory::ArithExpr, ae_text);
  }
};

}  // namespace

std::vector<SpecialToken> find_special_tokens(const graph::ProgramGraph& program) {
  Finder finder{program};
  for (const auto& pdg : program.functions) {
    for (const auto& unit : pdg.units) finder.scan_unit(pdg, unit);
  }
  return std::move(finder.out);
}

std::vector<SpecialToken> find_special_tokens(const graph::ProgramGraph& program,
                                              TokenCategory category) {
  std::vector<SpecialToken> out;
  for (auto& tok : find_special_tokens(program)) {
    if (tok.category == category) out.push_back(std::move(tok));
  }
  return out;
}

}  // namespace sevuldet::slicer
