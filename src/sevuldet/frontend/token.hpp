// Lexical tokens for the C-subset frontend. The lexer produces a flat
// token stream with source positions; the parser consumes it and the
// normalizer (Step III of the paper) re-tokenizes gadget text with the
// same lexer so both phases agree on token boundaries.
#pragma once

#include <string>
#include <string_view>

namespace sevuldet::frontend {

enum class TokenKind {
  Identifier,   // foo, strncpy, var1
  Keyword,      // if, while, int, return, ...
  IntLiteral,   // 42, 0x1F, 100UL
  FloatLiteral, // 3.14, 1e-9f
  StringLiteral,// "text" (quotes included in text)
  CharLiteral,  // 'a'
  Punct,        // operators and separators: + - -> ( ) { } ; ...
  EndOfFile,
};

/// One lexical token. `line` and `column` are 1-based positions of the
/// first character in the original source.
struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;
  int line = 0;
  int column = 0;

  bool is(TokenKind k) const { return kind == k; }
  bool is_punct(std::string_view p) const {
    return kind == TokenKind::Punct && text == p;
  }
  bool is_keyword(std::string_view k) const {
    return kind == TokenKind::Keyword && text == k;
  }
  bool is_identifier(std::string_view name) const {
    return kind == TokenKind::Identifier && text == name;
  }
};

/// True for the identifiers the lexer classifies as C keywords.
bool is_c_keyword(std::string_view word);

const char* token_kind_name(TokenKind kind);

}  // namespace sevuldet::frontend
