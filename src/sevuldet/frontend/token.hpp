// Lexical tokens for the C-subset frontend. The lexer produces a flat
// token stream with source positions; the parser consumes it and the
// normalizer (Step III of the paper) re-tokenizes gadget text with the
// same lexer so both phases agree on token boundaries.
//
// Tokens are zero-copy: `text` is a std::string_view into the buffer
// being lexed (an mmap'd file, a std::string, ...) — or, for spellings
// that are not contiguous in the source (a token split by a backslash
// line continuation, a macro expansion), into the TokenArena that
// accompanies the token stream. Token lifetime therefore equals
// min(source buffer lifetime, arena lifetime).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sevuldet::frontend {

/// Bump allocator for synthesized token spellings. Storage chunks are
/// heap blocks owned through unique_ptr, so views handed out stay valid
/// across moves of the arena and across further intern() calls.
/// reset() rewinds to empty while keeping the allocated chunks, so a
/// reused arena reaches a zero-allocation steady state.
class TokenArena {
 public:
  /// Copy `text` into stable storage and return a view of the copy.
  std::string_view intern(std::string_view text) {
    char* dst = allocate(text.size());
    if (!text.empty()) std::char_traits<char>::copy(dst, text.data(), text.size());
    return {dst, text.size()};
  }

  /// Forget every interned spelling but keep the chunks for reuse.
  void reset() {
    used_ = 0;
    chunk_index_ = 0;
  }

  std::size_t bytes_interned() const {
    std::size_t total = 0;
    for (std::size_t i = 0; i < chunk_index_; ++i) total += chunk_sizes_[i];
    return total + used_;
  }

 private:
  char* allocate(std::size_t n) {
    while (chunk_index_ < chunks_.size()) {
      if (used_ + n <= chunk_sizes_[chunk_index_]) {
        char* p = chunks_[chunk_index_].get() + used_;
        used_ += n;
        return p;
      }
      ++chunk_index_;
      used_ = 0;
    }
    const std::size_t size = std::max<std::size_t>(n, kChunkBytes);
    chunks_.push_back(std::make_unique<char[]>(size));
    chunk_sizes_.push_back(size);
    chunk_index_ = chunks_.size() - 1;
    used_ = n;
    return chunks_.back().get();
  }

  static constexpr std::size_t kChunkBytes = 4096;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::vector<std::size_t> chunk_sizes_;
  std::size_t chunk_index_ = 0;  // chunk currently being filled
  std::size_t used_ = 0;         // bytes used in that chunk
};

enum class TokenKind {
  Identifier,   // foo, strncpy, var1
  Keyword,      // if, while, int, return, ...
  IntLiteral,   // 42, 0x1F, 100UL
  FloatLiteral, // 3.14, 1e-9f
  StringLiteral,// "text" (quotes included in text)
  CharLiteral,  // 'a'
  Punct,        // operators and separators: + - -> ( ) { } ; ...
  EndOfFile,
};

/// One lexical token. `line` and `column` are 1-based positions of the
/// first character in the original source.
struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string_view text;
  int line = 0;
  int column = 0;

  bool is(TokenKind k) const { return kind == k; }
  bool is_punct(std::string_view p) const {
    return kind == TokenKind::Punct && text == p;
  }
  bool is_keyword(std::string_view k) const {
    return kind == TokenKind::Keyword && text == k;
  }
  bool is_identifier(std::string_view name) const {
    return kind == TokenKind::Identifier && text == name;
  }
};

/// True for the identifiers the lexer classifies as C keywords.
bool is_c_keyword(std::string_view word);

const char* token_kind_name(TokenKind kind);

}  // namespace sevuldet::frontend
