#include "sevuldet/frontend/recover.hpp"

#include <cctype>

#include "sevuldet/frontend/lexer.hpp"
#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::frontend {

namespace {

struct Chunk {
  std::size_t begin = 0;  // byte offsets into the source
  std::size_t end = 0;
  int begin_line = 1;
  int end_line = 1;
};

/// Split a source into top-level chunks: runs of bytes that end where
/// brace depth returns to zero at a ';' or '}'. The scan is tolerant —
/// strings, char literals and comments are skipped, anything malformed
/// just keeps the bytes flowing into the current chunk — so it never
/// throws on input the lexer would reject.
std::vector<Chunk> split_top_level(std::string_view src) {
  std::vector<Chunk> chunks;
  std::size_t i = 0;
  int line = 1;
  int depth = 0;
  Chunk current{0, 0, 1, 1};
  bool in_chunk = false;

  auto close_chunk = [&](std::size_t end, int end_line) {
    if (!in_chunk) return;
    current.end = end;
    current.end_line = end_line;
    chunks.push_back(current);
    in_chunk = false;
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i < src.size() && !(src[i] == '*' && i + 1 < src.size() && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= src.size() ? i + 2 : src.size();
      continue;
    }
    if (!in_chunk) {
      in_chunk = true;
      current = {i, i, line, line};
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      while (i < src.size() && src[i] != quote && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < src.size()) ++i;
        ++i;
      }
      if (i < src.size() && src[i] == quote) ++i;
      continue;
    }
    if (c == '{') {
      ++depth;
      ++i;
      continue;
    }
    if (c == '}') {
      if (depth > 0) --depth;
      ++i;
      if (depth == 0) {
        // Optional trailing ';' (struct definitions, initialized arrays).
        std::size_t j = i;
        while (j < src.size() &&
               (src[j] == ' ' || src[j] == '\t' || src[j] == '\r')) {
          ++j;
        }
        if (j < src.size() && src[j] == ';') i = j + 1;
        close_chunk(i, line);
      }
      continue;
    }
    if (c == ';' && depth == 0) {
      ++i;
      close_chunk(i, line);
      continue;
    }
    ++i;
  }
  close_chunk(src.size(), line);
  return chunks;
}

}  // namespace

RecoveredParse parse_with_recovery(std::string_view source) {
  util::trace::ScopedSpan span("frontend.recover");
  RecoveredParse result;
  try {
    result.unit = parse(source);
    return result;
  } catch (const LexError&) {
  } catch (const ParseError&) {
  }

  result.clean = false;
  util::metrics::counter_add("frontend.recover.files");

  std::vector<Chunk> chunks = split_top_level(source);
  result.chunks_total = static_cast<int>(chunks.size());
  std::string padded;
  for (const Chunk& chunk : chunks) {
    std::string_view text = source.substr(chunk.begin, chunk.end - chunk.begin);
    // Pad with newlines so line numbers inside the chunk stay absolute.
    padded.assign(static_cast<std::size_t>(chunk.begin_line - 1), '\n');
    padded.append(text);
    try {
      TranslationUnit part = parse(padded);
      for (auto& fn : part.functions) result.unit.functions.push_back(std::move(fn));
      for (auto& g : part.globals) result.unit.globals.push_back(std::move(g));
      for (auto& d : part.directives) result.unit.directives.push_back(std::move(d));
      ++result.chunks_recovered;
    } catch (const LexError& e) {
      util::metrics::counter_add("frontend.drop.lex_chunk");
      result.lost.push_back(
          {chunk.begin_line, chunk.end_line, e.raw_message(), std::string(text)});
    } catch (const ParseError& e) {
      util::metrics::counter_add("frontend.drop.parse_chunk");
      result.lost.push_back(
          {chunk.begin_line, chunk.end_line, e.raw_message(), std::string(text)});
    }
  }
  util::metrics::counter_add("frontend.recover.chunks",
                             static_cast<long long>(result.chunks_total));
  util::metrics::counter_add("frontend.recover.chunks_ok",
                             static_cast<long long>(result.chunks_recovered));
  return result;
}

}  // namespace sevuldet::frontend
