#include "sevuldet/frontend/preprocess.hpp"

#include <cctype>
#include <filesystem>
#include <map>
#include <optional>
#include <unordered_set>

#include "sevuldet/util/mmap_file.hpp"

namespace sevuldet::frontend {

namespace {

namespace fs = std::filesystem;

inline bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
inline bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

struct Macro {
  bool function_like = false;
  std::vector<std::string> params;
  std::string body;
};

struct PhysicalLine {
  std::string_view with_term;  // raw bytes including the line terminator
  std::string_view content;    // without terminator
  int number = 0;              // 1-based within its buffer
  bool continues = false;      // content ends with a backslash
};

/// Iterate the physical lines of a buffer, preserving terminators.
std::vector<PhysicalLine> physical_lines(std::string_view src) {
  std::vector<PhysicalLine> lines;
  std::size_t begin = 0;
  int number = 1;
  while (begin < src.size()) {
    std::size_t nl = src.find('\n', begin);
    std::size_t term_end = nl == std::string_view::npos ? src.size() : nl + 1;
    std::string_view with_term = src.substr(begin, term_end - begin);
    std::string_view content = with_term;
    if (content.ends_with('\n')) content.remove_suffix(1);
    if (content.ends_with('\r')) content.remove_suffix(1);
    lines.push_back(
        {with_term, content, number, !content.empty() && content.back() == '\\'});
    begin = term_end;
    ++number;
  }
  return lines;
}

// #if expression evaluator: C integer-constant subset with defined(),
// unknown identifiers resolving through the macro table (or to 0, the
// standard behavior). Returns nullopt on anything it cannot parse.
class CondEval {
 public:
  CondEval(std::string_view expr,
           const std::map<std::string, Macro, std::less<>>& macros, int depth)
      : s_(expr), macros_(macros), depth_(depth) {}

  std::optional<long long> eval() {
    auto v = parse_or();
    skip_ws();
    if (!v || pos_ != s_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(std::string_view tok) {
    skip_ws();
    if (s_.substr(pos_, tok.size()) == tok) {
      pos_ += tok.size();
      return true;
    }
    return false;
  }

  std::optional<long long> parse_or() {
    auto lhs = parse_and();
    while (lhs) {
      skip_ws();
      if (s_.substr(pos_, 2) == "||") {
        pos_ += 2;
        auto rhs = parse_and();
        if (!rhs) return std::nullopt;
        lhs = (*lhs != 0 || *rhs != 0) ? 1 : 0;
      } else {
        break;
      }
    }
    return lhs;
  }

  std::optional<long long> parse_and() {
    auto lhs = parse_cmp();
    while (lhs) {
      skip_ws();
      if (s_.substr(pos_, 2) == "&&") {
        pos_ += 2;
        auto rhs = parse_cmp();
        if (!rhs) return std::nullopt;
        lhs = (*lhs != 0 && *rhs != 0) ? 1 : 0;
      } else {
        break;
      }
    }
    return lhs;
  }

  std::optional<long long> parse_cmp() {
    auto lhs = parse_add();
    while (lhs) {
      skip_ws();
      std::string_view rest = s_.substr(pos_);
      long long l = *lhs;
      std::optional<long long> rhs;
      if (rest.starts_with("==")) {
        pos_ += 2;
        rhs = parse_add();
        if (!rhs) return std::nullopt;
        lhs = l == *rhs ? 1 : 0;
      } else if (rest.starts_with("!=")) {
        pos_ += 2;
        rhs = parse_add();
        if (!rhs) return std::nullopt;
        lhs = l != *rhs ? 1 : 0;
      } else if (rest.starts_with("<=")) {
        pos_ += 2;
        rhs = parse_add();
        if (!rhs) return std::nullopt;
        lhs = l <= *rhs ? 1 : 0;
      } else if (rest.starts_with(">=")) {
        pos_ += 2;
        rhs = parse_add();
        if (!rhs) return std::nullopt;
        lhs = l >= *rhs ? 1 : 0;
      } else if (rest.starts_with("<") && !rest.starts_with("<<")) {
        pos_ += 1;
        rhs = parse_add();
        if (!rhs) return std::nullopt;
        lhs = l < *rhs ? 1 : 0;
      } else if (rest.starts_with(">") && !rest.starts_with(">>")) {
        pos_ += 1;
        rhs = parse_add();
        if (!rhs) return std::nullopt;
        lhs = l > *rhs ? 1 : 0;
      } else {
        break;
      }
    }
    return lhs;
  }

  std::optional<long long> parse_add() {
    auto lhs = parse_mul();
    while (lhs) {
      skip_ws();
      char c = peek();
      if (c == '+' || c == '-') {
        ++pos_;
        auto rhs = parse_mul();
        if (!rhs) return std::nullopt;
        lhs = c == '+' ? *lhs + *rhs : *lhs - *rhs;
      } else {
        break;
      }
    }
    return lhs;
  }

  std::optional<long long> parse_mul() {
    auto lhs = parse_unary();
    while (lhs) {
      skip_ws();
      char c = peek();
      if (c == '*' || c == '/' || c == '%') {
        ++pos_;
        auto rhs = parse_unary();
        if (!rhs) return std::nullopt;
        if ((c == '/' || c == '%') && *rhs == 0) return std::nullopt;
        lhs = c == '*' ? *lhs * *rhs : (c == '/' ? *lhs / *rhs : *lhs % *rhs);
      } else {
        break;
      }
    }
    return lhs;
  }

  std::optional<long long> parse_unary() {
    skip_ws();
    char c = peek();
    if (c == '!') {
      ++pos_;
      auto v = parse_unary();
      if (!v) return std::nullopt;
      return *v == 0 ? 1 : 0;
    }
    if (c == '-') {
      ++pos_;
      auto v = parse_unary();
      if (!v) return std::nullopt;
      return -*v;
    }
    if (c == '+') {
      ++pos_;
      return parse_unary();
    }
    if (c == '~') {
      ++pos_;
      auto v = parse_unary();
      if (!v) return std::nullopt;
      return ~*v;
    }
    return parse_primary();
  }

  std::optional<long long> parse_primary() {
    skip_ws();
    char c = peek();
    if (c == '(') {
      ++pos_;
      auto v = parse_or();
      if (!v || !eat(")")) return std::nullopt;
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = pos_;
      long long value = 0;
      if (s_.substr(pos_, 2) == "0x" || s_.substr(pos_, 2) == "0X") {
        end = pos_ + 2;
        while (end < s_.size() && std::isxdigit(static_cast<unsigned char>(s_[end]))) {
          value = value * 16 +
                  (std::isdigit(static_cast<unsigned char>(s_[end]))
                       ? s_[end] - '0'
                       : std::tolower(static_cast<unsigned char>(s_[end])) - 'a' + 10);
          ++end;
        }
      } else {
        while (end < s_.size() && std::isdigit(static_cast<unsigned char>(s_[end]))) {
          value = value * 10 + (s_[end] - '0');
          ++end;
        }
      }
      // integer suffixes
      while (end < s_.size() &&
             (s_[end] == 'u' || s_[end] == 'U' || s_[end] == 'l' || s_[end] == 'L')) {
        ++end;
      }
      pos_ = end;
      return value;
    }
    if (ident_start(c)) {
      std::size_t end = pos_;
      while (end < s_.size() && ident_cont(s_[end])) ++end;
      std::string_view name = s_.substr(pos_, end - pos_);
      pos_ = end;
      if (name == "defined") {
        skip_ws();
        bool paren = eat("(");
        skip_ws();
        std::size_t e2 = pos_;
        while (e2 < s_.size() && ident_cont(s_[e2])) ++e2;
        if (e2 == pos_) return std::nullopt;
        std::string_view arg = s_.substr(pos_, e2 - pos_);
        pos_ = e2;
        if (paren && !eat(")")) return std::nullopt;
        return macros_.find(arg) != macros_.end() ? 1 : 0;
      }
      auto it = macros_.find(name);
      if (it == macros_.end() || it->second.function_like) return 0;
      if (depth_ <= 0) return std::nullopt;
      return CondEval(trim(it->second.body), macros_, depth_ - 1).eval();
    }
    return std::nullopt;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  const std::map<std::string, Macro, std::less<>>& macros_;
  int depth_;
};

class Preprocessor {
 public:
  explicit Preprocessor(const PreprocessOptions& options) : options_(options) {}

  PreprocessResult run(std::string_view source) {
    PreprocessResult result;
    process_buffer(source, /*is_main=*/true, options_.current_dir,
                   options_.max_include_depth);
    result.text = std::move(text_);
    result.line_map = std::move(line_map_);
    result.stats = stats_;
    result.changed = result.text != source;
    return result;
  }

 private:
  // --- output ----------------------------------------------------------

  void emit_verbatim(const PhysicalLine& line, int origin) {
    text_.append(line.with_term);
    // A final line without terminator is still one output line.
    line_map_.push_back(origin);
  }

  void emit_text(std::string_view text, int origin) {
    text_.append(text);
    text_.push_back('\n');
    line_map_.push_back(origin);
  }

  // --- conditional stack ----------------------------------------------

  struct Cond {
    bool parent_active = true;
    bool taken = false;   // some branch of this #if chain was active
    bool active = false;  // current branch is active
  };

  bool active() const { return conds_.empty() || conds_.back().active; }

  // --- directive handling ----------------------------------------------

  // Returns true when the first non-whitespace character outside a
  // block comment is '#'. Assumes in_comment_ reflects the state at the
  // start of the line (updated separately by update_comment_state).
  bool is_directive(std::string_view content) const {
    bool in_comment = in_comment_;
    std::size_t i = 0;
    while (i < content.size()) {
      if (in_comment) {
        std::size_t close = content.find("*/", i);
        if (close == std::string_view::npos) return false;
        i = close + 2;
        in_comment = false;
        continue;
      }
      char c = content[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '/' && i + 1 < content.size() && content[i + 1] == '*') {
        in_comment = true;
        i += 2;
        continue;
      }
      return c == '#';
    }
    return false;
  }

  // Track /* */ comment state across lines (string-literal aware).
  void update_comment_state(std::string_view content) {
    std::size_t i = 0;
    bool in_string = false, in_char = false;
    while (i < content.size()) {
      char c = content[i];
      if (in_comment_) {
        std::size_t close = content.find("*/", i);
        if (close == std::string_view::npos) return;
        i = close + 2;
        in_comment_ = false;
        continue;
      }
      if (in_string) {
        if (c == '\\') {
          i += 2;
          continue;
        }
        if (c == '"') in_string = false;
        ++i;
        continue;
      }
      if (in_char) {
        if (c == '\\') {
          i += 2;
          continue;
        }
        if (c == '\'') in_char = false;
        ++i;
        continue;
      }
      if (c == '"') {
        in_string = true;
        ++i;
      } else if (c == '\'') {
        in_char = true;
        ++i;
      } else if (c == '/' && i + 1 < content.size() && content[i + 1] == '/') {
        return;  // line comment: rest of line is trivia
      } else if (c == '/' && i + 1 < content.size() && content[i + 1] == '*') {
        in_comment_ = true;
        i += 2;
      } else {
        ++i;
      }
    }
  }

  void handle_directive(std::string_view logical, const std::string& dir,
                        int depth) {
    std::string_view rest = trim(logical);
    rest.remove_prefix(1);  // '#'
    rest = trim(rest);
    std::size_t end = 0;
    while (end < rest.size() && ident_cont(rest[end])) ++end;
    std::string_view name = rest.substr(0, end);
    std::string_view arg = trim(rest.substr(end));

    if (name == "ifdef" || name == "ifndef") {
      ++stats_.conditionals;
      bool defined = macros_.find(ident_prefix(arg)) != macros_.end();
      bool value = name == "ifdef" ? defined : !defined;
      conds_.push_back({active(), value && active(), value && active()});
      return;
    }
    if (name == "if") {
      ++stats_.conditionals;
      bool value = eval_condition(arg);
      conds_.push_back({active(), value && active(), value && active()});
      return;
    }
    if (name == "elif") {
      if (conds_.empty()) {
        ++stats_.unresolved_conditionals;
        return;
      }
      Cond& top = conds_.back();
      if (!top.parent_active || top.taken) {
        top.active = false;
      } else {
        top.active = eval_condition(arg);
        top.taken = top.active;
      }
      return;
    }
    if (name == "else") {
      if (conds_.empty()) {
        ++stats_.unresolved_conditionals;
        return;
      }
      Cond& top = conds_.back();
      top.active = top.parent_active && !top.taken;
      top.taken = true;
      return;
    }
    if (name == "endif") {
      if (conds_.empty()) {
        ++stats_.unresolved_conditionals;
        return;
      }
      conds_.pop_back();
      return;
    }

    if (!active()) return;  // skipped region: no defines/includes

    if (name == "define") {
      parse_define(arg);
      return;
    }
    if (name == "undef") {
      auto it = macros_.find(ident_prefix(arg));
      if (it != macros_.end()) macros_.erase(it);
      return;
    }
    if (name == "include") {
      handle_include(arg, dir, depth);
      return;
    }
    // #pragma, #error, #line, unknown: left verbatim, nothing to do.
  }

  static std::string_view ident_prefix(std::string_view s) {
    std::size_t end = 0;
    while (end < s.size() && ident_cont(s[end])) ++end;
    return s.substr(0, end);
  }

  void parse_define(std::string_view arg) {
    std::string_view name = ident_prefix(arg);
    if (name.empty()) return;
    std::string_view rest = arg.substr(name.size());
    Macro macro;
    if (!rest.empty() && rest.front() == '(') {
      // Function-like only when '(' immediately follows the name.
      macro.function_like = true;
      std::size_t close = rest.find(')');
      if (close == std::string_view::npos) return;  // malformed: skip
      std::string_view params = rest.substr(1, close - 1);
      std::size_t begin = 0;
      while (begin <= params.size()) {
        std::size_t comma = params.find(',', begin);
        std::string_view p =
            trim(params.substr(begin, comma == std::string_view::npos
                                          ? std::string_view::npos
                                          : comma - begin));
        if (!p.empty()) macro.params.emplace_back(p);
        if (comma == std::string_view::npos) break;
        begin = comma + 1;
      }
      rest = rest.substr(close + 1);
    }
    macro.body = std::string(trim(rest));
    macros_.insert_or_assign(std::string(name), std::move(macro));
    ++stats_.macros_defined;
  }

  void handle_include(std::string_view arg, const std::string& dir, int depth) {
    char open = arg.empty() ? '\0' : arg.front();
    char close = open == '"' ? '"' : (open == '<' ? '>' : '\0');
    std::size_t end = close ? arg.find(close, 1) : std::string_view::npos;
    if (close == '\0' || end == std::string_view::npos) {
      ++stats_.includes_unresolved;
      return;
    }
    std::string_view name = arg.substr(1, end - 1);
    if (depth <= 0) {
      ++stats_.includes_unresolved;
      return;
    }

    std::vector<std::string> candidates;
    if (open == '"' && !dir.empty()) {
      candidates.push_back((fs::path(dir) / std::string(name)).string());
    }
    for (const auto& root : options_.include_roots) {
      candidates.push_back((fs::path(root) / std::string(name)).string());
    }

    for (const auto& candidate : candidates) {
      std::error_code ec;
      if (!fs::is_regular_file(candidate, ec)) continue;
      std::string canonical = fs::weakly_canonical(candidate, ec).string();
      if (ec) canonical = candidate;
      if (including_.contains(canonical)) {
        ++stats_.include_cycles;
        return;
      }
      util::MmapFile file;
      try {
        file = util::MmapFile::open(candidate);
      } catch (const std::exception&) {
        continue;  // unreadable: try the next root
      }
      ++stats_.includes_resolved;
      including_.insert(canonical);
      std::string inc_dir = fs::path(candidate).parent_path().string();
      process_buffer(file.view(), /*is_main=*/false, inc_dir, depth - 1);
      including_.erase(canonical);
      return;
    }
    ++stats_.includes_unresolved;
  }

  bool eval_condition(std::string_view expr) {
    auto value = CondEval(expr, macros_, options_.max_macro_depth).eval();
    if (!value) {
      // Unresolvable expression: keep the region so the scanner sees the
      // code (degradation is counted, never fatal).
      ++stats_.unresolved_conditionals;
      return true;
    }
    return *value != 0;
  }

  // --- macro expansion --------------------------------------------------

  // Expand macros in one physical line of code (not a directive).
  // Comment/string aware; returns nullopt when nothing changed.
  std::optional<std::string> expand_line(std::string_view line) {
    if (macros_.empty()) return std::nullopt;
    bool changed = false;
    std::string out = expand_text(line, options_.max_macro_depth, &changed,
                                  /*code_line=*/true);
    if (!changed) return std::nullopt;
    return out;
  }

  std::string expand_text(std::string_view text, int depth, bool* changed,
                          bool code_line) {
    std::string out;
    out.reserve(text.size());
    std::size_t i = 0;
    bool in_string = false, in_char = false;
    bool in_comment = code_line ? in_comment_ : false;
    while (i < text.size()) {
      char c = text[i];
      if (in_comment) {
        std::size_t close = text.find("*/", i);
        std::size_t upto = close == std::string_view::npos ? text.size() : close + 2;
        out.append(text.substr(i, upto - i));
        i = upto;
        in_comment = false;
        if (close == std::string_view::npos) break;
        continue;
      }
      if (in_string || in_char) {
        out.push_back(c);
        if (c == '\\' && i + 1 < text.size()) {
          out.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if ((in_string && c == '"') || (in_char && c == '\'')) {
          in_string = in_char = false;
        }
        ++i;
        continue;
      }
      if (c == '"') {
        in_string = true;
        out.push_back(c);
        ++i;
        continue;
      }
      if (c == '\'') {
        in_char = true;
        out.push_back(c);
        ++i;
        continue;
      }
      if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
        out.append(text.substr(i));
        break;
      }
      if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
        in_comment = true;
        out.append("/*");
        i += 2;
        continue;
      }
      if (ident_start(c)) {
        std::size_t end = i;
        while (end < text.size() && ident_cont(text[end])) ++end;
        std::string_view word = text.substr(i, end - i);
        auto it = macros_.find(word);
        if (it == macros_.end() || depth <= 0) {
          out.append(word);
          i = end;
          continue;
        }
        const Macro& macro = it->second;
        if (!macro.function_like) {
          bool inner = false;
          out.append(expand_text(macro.body, depth - 1, &inner, false));
          ++stats_.macro_expansions;
          *changed = true;
          i = end;
          continue;
        }
        // Function-like: require '(' (after optional spaces) on this line.
        std::size_t p = end;
        while (p < text.size() &&
               std::isspace(static_cast<unsigned char>(text[p]))) {
          ++p;
        }
        if (p >= text.size() || text[p] != '(') {
          out.append(word);  // name without call: leave as-is
          i = end;
          continue;
        }
        std::vector<std::string> args;
        std::size_t after = parse_macro_args(text, p, args);
        if (after == 0) {  // unbalanced on this line: degrade, no expansion
          out.append(word);
          i = end;
          continue;
        }
        bool inner = false;
        std::string body = substitute_params(macro, args);
        out.append(expand_text(body, depth - 1, &inner, false));
        ++stats_.macro_expansions;
        *changed = true;
        i = after;
        continue;
      }
      out.push_back(c);
      ++i;
    }
    return out;
  }

  // Parse a parenthesized argument list starting at text[open_paren].
  // Returns the index just past the closing ')' (0 if unbalanced).
  static std::size_t parse_macro_args(std::string_view text,
                                      std::size_t open_paren,
                                      std::vector<std::string>& args) {
    std::size_t i = open_paren + 1;
    int depth = 1;
    std::string current;
    bool in_string = false, in_char = false;
    bool any = false;
    while (i < text.size()) {
      char c = text[i];
      if (in_string || in_char) {
        current.push_back(c);
        if (c == '\\' && i + 1 < text.size()) {
          current.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if ((in_string && c == '"') || (in_char && c == '\'')) {
          in_string = in_char = false;
        }
        ++i;
        continue;
      }
      if (c == '"') in_string = true;
      if (c == '\'') in_char = true;
      if (c == '(') ++depth;
      if (c == ')') {
        --depth;
        if (depth == 0) {
          if (any || !trim(current).empty()) args.emplace_back(trim(current));
          return i + 1;
        }
      }
      if (c == ',' && depth == 1) {
        args.emplace_back(trim(current));
        current.clear();
        any = true;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
    }
    return 0;
  }

  static std::string substitute_params(const Macro& macro,
                                       const std::vector<std::string>& args) {
    const std::string& body = macro.body;
    std::string out;
    out.reserve(body.size());
    std::size_t i = 0;
    while (i < body.size()) {
      char c = body[i];
      if (ident_start(c)) {
        std::size_t end = i;
        while (end < body.size() && ident_cont(body[end])) ++end;
        std::string_view word{body.data() + i, end - i};
        bool replaced = false;
        for (std::size_t k = 0; k < macro.params.size(); ++k) {
          if (word == macro.params[k]) {
            out.append(k < args.size() ? args[k] : "");
            replaced = true;
            break;
          }
        }
        if (!replaced) out.append(word);
        i = end;
        continue;
      }
      out.push_back(c);
      ++i;
    }
    // Token paste: drop "##" together with the whitespace around it.
    std::string pasted;
    pasted.reserve(out.size());
    std::size_t j = 0;
    while (j < out.size()) {
      std::size_t paste = out.find("##", j);
      if (paste == std::string::npos) {
        pasted.append(out.substr(j));
        break;
      }
      std::size_t left = paste;
      while (left > j &&
             std::isspace(static_cast<unsigned char>(out[left - 1]))) {
        --left;
      }
      pasted.append(out.substr(j, left - j));
      j = paste + 2;
      while (j < out.size() && std::isspace(static_cast<unsigned char>(out[j]))) {
        ++j;
      }
    }
    return pasted;
  }

  // --- main loop --------------------------------------------------------

  void process_buffer(std::string_view src, bool is_main, const std::string& dir,
                      int depth) {
    auto lines = physical_lines(src);
    std::size_t i = 0;
    while (i < lines.size()) {
      const PhysicalLine& line = lines[i];
      int origin = is_main ? line.number : 0;
      if (is_directive(line.content)) {
        // Join continuations into the logical directive text; emit every
        // physical line verbatim so the lexer sees the same bytes.
        std::string logical(line.content);
        std::size_t last = i;
        while (lines[last].continues && last + 1 < lines.size()) {
          logical.pop_back();  // trailing backslash
          logical += ' ';
          ++last;
          logical.append(lines[last].content);
        }
        for (std::size_t k = i; k <= last; ++k) {
          emit_verbatim(lines[k], is_main ? lines[k].number : 0);
          update_comment_state(lines[k].content);
        }
        handle_directive(logical, dir, depth);
        i = last + 1;
        continue;
      }
      if (!active()) {
        // Inactive region: blank the line, keep the count.
        emit_text("", origin);
        ++stats_.lines_dropped;
        update_comment_state(line.content);
        ++i;
        continue;
      }
      std::optional<std::string> expanded = expand_line(line.content);
      if (expanded) {
        emit_text(*expanded, origin);
      } else {
        emit_verbatim(line, origin);
      }
      update_comment_state(line.content);
      ++i;
    }
  }

  const PreprocessOptions& options_;
  PreprocessStats stats_;
  std::map<std::string, Macro, std::less<>> macros_;
  std::vector<Cond> conds_;
  std::unordered_set<std::string> including_;  // cycle guard (canonical paths)
  bool in_comment_ = false;

  std::string text_;
  std::vector<int> line_map_;
};

}  // namespace

PreprocessResult preprocess(std::string_view source,
                            const PreprocessOptions& options) {
  return Preprocessor(options).run(source);
}

}  // namespace sevuldet::frontend
