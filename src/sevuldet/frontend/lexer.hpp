// Hand-written lexer for the C subset. Skips // and /* */ comments and
// whitespace, records preprocessor directive lines separately (the
// slicing pipeline ignores them but the normalizer keeps macros intact),
// and reports malformed input with source positions rather than crashing.
//
// The scanner is zero-copy: every Token::text is a string_view into the
// caller's source buffer, except spellings that are not contiguous in
// the source (tokens split by backslash line continuations), which are
// interned into the result's TokenArena. The caller must therefore keep
// the source buffer alive as long as the tokens; the arena travels
// inside LexResult/TokenStream and needs no extra care.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sevuldet/frontend/token.hpp"

namespace sevuldet::frontend {

/// Raised on malformed input (unterminated string/comment, stray byte).
/// what() carries the position-decorated text; raw_message() the bare
/// reason, for callers that build drop-reason labels.
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, int line, int column)
      : std::runtime_error(message + " at " + std::to_string(line) + ":" +
                           std::to_string(column)),
        line(line),
        column(column),
        raw_message_(message) {}
  const std::string& raw_message() const { return raw_message_; }
  int line;
  int column;

 private:
  std::string raw_message_;
};

struct LexResult {
  std::vector<Token> tokens;  // ends with an EndOfFile token
  std::vector<std::string_view> directives;  // raw '#...' lines, in order
  TokenArena arena;  // storage for spliced/synthesized spellings
};

/// Tokenize a whole translation unit. Views in the result point into
/// `source` (or the result's own arena); `source` must outlive them.
LexResult lex(std::string_view source);

/// Tokenize into a caller-owned result, reusing its vectors' capacity
/// and its arena chunks — repeated calls on same-sized inputs reach a
/// zero-allocation steady state. Clears previous contents.
void lex_into(std::string_view source, LexResult& out);

/// Token sequence without the EndOfFile sentinel, bundled with the
/// arena that keeps synthesized spellings alive.
struct TokenStream {
  std::vector<Token> tokens;
  TokenArena arena;

  std::size_t size() const { return tokens.size(); }
  bool empty() const { return tokens.empty(); }
  const Token& operator[](std::size_t i) const { return tokens[i]; }
  auto begin() const { return tokens.begin(); }
  auto end() const { return tokens.end(); }
};

/// Tokenize and drop the EndOfFile sentinel — convenient for callers that
/// only want the token texts (e.g. the gadget tokenizer).
TokenStream lex_tokens(std::string_view source);

}  // namespace sevuldet::frontend
