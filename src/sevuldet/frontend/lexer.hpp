// Hand-written lexer for the C subset. Skips // and /* */ comments and
// whitespace, records preprocessor directive lines separately (the
// slicing pipeline ignores them but the normalizer keeps macros intact),
// and reports malformed input with source positions rather than crashing.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sevuldet/frontend/token.hpp"

namespace sevuldet::frontend {

/// Raised on malformed input (unterminated string/comment, stray byte).
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, int line, int column)
      : std::runtime_error(message + " at " + std::to_string(line) + ":" +
                           std::to_string(column)),
        line(line),
        column(column) {}
  int line;
  int column;
};

struct LexResult {
  std::vector<Token> tokens;       // ends with an EndOfFile token
  std::vector<std::string> directives;  // raw '#...' lines, in order
};

/// Tokenize a whole translation unit.
LexResult lex(std::string_view source);

/// Tokenize and drop the EndOfFile sentinel — convenient for callers that
/// only want the token texts (e.g. the gadget tokenizer).
std::vector<Token> lex_tokens(std::string_view source);

}  // namespace sevuldet::frontend
