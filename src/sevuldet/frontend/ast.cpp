#include "sevuldet/frontend/ast.hpp"

namespace sevuldet::frontend {

const char* stmt_kind_name(StmtKind kind) {
  switch (kind) {
    case StmtKind::Compound: return "compound";
    case StmtKind::Decl: return "decl";
    case StmtKind::ExprStmt: return "expr";
    case StmtKind::If: return "if";
    case StmtKind::For: return "for";
    case StmtKind::While: return "while";
    case StmtKind::DoWhile: return "do-while";
    case StmtKind::Switch: return "switch";
    case StmtKind::Case: return "case";
    case StmtKind::Break: return "break";
    case StmtKind::Continue: return "continue";
    case StmtKind::Return: return "return";
    case StmtKind::Goto: return "goto";
    case StmtKind::Label: return "label";
    case StmtKind::Null: return "null";
  }
  return "?";
}

const char* expr_kind_name(ExprKind kind) {
  switch (kind) {
    case ExprKind::Ident: return "ident";
    case ExprKind::IntLit: return "int";
    case ExprKind::FloatLit: return "float";
    case ExprKind::StringLit: return "string";
    case ExprKind::CharLit: return "char";
    case ExprKind::Unary: return "unary";
    case ExprKind::PostfixUnary: return "postfix";
    case ExprKind::Binary: return "binary";
    case ExprKind::Assign: return "assign";
    case ExprKind::Ternary: return "ternary";
    case ExprKind::Call: return "call";
    case ExprKind::Index: return "index";
    case ExprKind::Member: return "member";
    case ExprKind::Cast: return "cast";
    case ExprKind::SizeOf: return "sizeof";
    case ExprKind::Comma: return "comma";
  }
  return "?";
}

ExprPtr clone(const Expr& expr) {
  auto out = std::make_unique<Expr>(expr.kind);
  out->line = expr.line;
  out->column = expr.column;
  out->text = expr.text;
  out->op = expr.op;
  out->children.reserve(expr.children.size());
  for (const auto& child : expr.children) out->children.push_back(clone(*child));
  return out;
}

StmtPtr clone(const Stmt& stmt) {
  auto out = std::make_unique<Stmt>(stmt.kind);
  out->range = stmt.range;
  out->name = stmt.name;
  out->type = stmt.type;
  out->decl_is_pointer = stmt.decl_is_pointer;
  out->decl_is_array = stmt.decl_is_array;
  out->for_has_init = stmt.for_has_init;
  out->for_has_cond = stmt.for_has_cond;
  out->for_has_step = stmt.for_has_step;
  out->exprs.reserve(stmt.exprs.size());
  for (const auto& e : stmt.exprs) out->exprs.push_back(clone(*e));
  out->children.reserve(stmt.children.size());
  for (const auto& c : stmt.children) out->children.push_back(clone(*c));
  return out;
}

}  // namespace sevuldet::frontend
