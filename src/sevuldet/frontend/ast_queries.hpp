// Use/def/call extraction from expressions and statements — the raw
// material for data-dependence edges (Definition 2 of the paper) and for
// the special-token finder (Definition 4).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "sevuldet/frontend/ast.hpp"

namespace sevuldet::frontend {

struct UseDef {
  std::set<std::string> uses;   // variables read
  std::set<std::string> defs;   // variables written (incl. declarations)
  std::vector<std::string> calls;  // callee names, in evaluation order
};

/// Uses/defs/calls of one expression tree. Assignment LHS counts as a def
/// (and as a use for compound assignments and ++/--); array/pointer
/// element writes def the base variable conservatively; arguments to
/// calls whose callee is a known out-writing library function (memcpy,
/// strcpy, scanf, ...) def their destination argument.
UseDef analyze_expr(const Expr& expr);

/// Uses/defs/calls of one statement *unit*: its own expressions only —
/// child statements are separate units for the CFG/PDG. For a Decl this
/// includes the declared names as defs; for control statements it covers
/// the predicate.
UseDef analyze_stmt(const Stmt& stmt);

/// True if the callee writes through one of its pointer arguments; the
/// 0-based indices of written arguments are appended to out_params.
bool library_out_params(const std::string& callee, std::vector<int>& out_params);

}  // namespace sevuldet::frontend
