// Lightweight C preprocessor for real-world scanning. Resolves
// #include against the scan roots (with an include-set cycle guard),
// expands object-like and function-like macros with a recursion cap,
// and evaluates #if/#ifdef/#elif/#else/#endif conditionals. It is NOT a
// conforming cpp: anything it cannot resolve — missing headers,
// token-pasting edge cases, unparseable #if expressions — degrades
// gracefully (the construct is left in place or the region is kept)
// instead of erroring, and every degradation is counted in the stats so
// the scan drop-rate gate sees it.
//
// Output-line provenance: every output line carries the 1-based line of
// the *top-level* file it came from (0 for lines pulled in from
// includes), so findings on preprocessed text map back to the file the
// user pointed the scanner at. When nothing needed rewriting the output
// is byte-identical to the input (`changed == false`), which keeps
// single-file scans bit-for-bit compatible with the unpreprocessed
// pipeline.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sevuldet::frontend {

struct PreprocessOptions {
  /// Directories #include names are resolved against ("" names also try
  /// the including file's directory first).
  std::vector<std::string> include_roots;
  /// Directory of the file being preprocessed (for "name" includes).
  std::string current_dir;
  int max_include_depth = 16;
  int max_macro_depth = 8;
};

struct PreprocessStats {
  int includes_resolved = 0;
  int includes_unresolved = 0;  // not found under any root: left verbatim
  int include_cycles = 0;       // self/mutual inclusion stopped by guard
  int macros_defined = 0;
  int macro_expansions = 0;
  int conditionals = 0;              // #if/#ifdef/#ifndef evaluated
  int unresolved_conditionals = 0;   // unparseable #if exprs: region kept
  int lines_dropped = 0;             // lines blanked by inactive regions
};

struct PreprocessResult {
  std::string text;  // preprocessed translation unit
  /// Original 1-based line in the top-level file for output line i+1;
  /// 0 when the line came from an #include.
  std::vector<int> line_map;
  PreprocessStats stats;
  bool changed = false;  // false => `text` is byte-identical to the input

  /// Map a 1-based line of `text` back to the top-level file (0 when it
  /// originated in an include; identity when out of range).
  int origin_line(int output_line) const {
    if (output_line < 1 ||
        static_cast<std::size_t>(output_line) > line_map.size()) {
      return output_line;
    }
    return line_map[static_cast<std::size_t>(output_line) - 1];
  }
};

PreprocessResult preprocess(std::string_view source,
                            const PreprocessOptions& options = {});

}  // namespace sevuldet::frontend
