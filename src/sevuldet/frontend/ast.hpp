// Abstract syntax tree for the C subset. The tree is statement-oriented:
// the slicer and the path-sensitive gadget generator (Algorithm 1 of the
// paper) work on statements with line numbers and on the expression trees
// hanging off them. Nodes are owned through std::unique_ptr; the tree is
// immutable after parsing.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace sevuldet::frontend {

struct SourceRange {
  int begin_line = 0;  // 1-based; 0 means unknown
  int end_line = 0;    // inclusive
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  Ident,
  IntLit,
  FloatLit,
  StringLit,
  CharLit,
  Unary,      // op applied prefix: - ! ~ * & ++ --
  PostfixUnary,  // x++ x--
  Binary,     // arithmetic / relational / logical / bitwise
  Assign,     // = += -= *= /= %= <<= >>= &= |= ^=
  Ternary,    // a ? b : c
  Call,       // f(args)
  Index,      // a[i]
  Member,     // a.b or a->b
  Cast,       // (type)expr
  SizeOf,     // sizeof(type) or sizeof expr
  Comma,      // a, b
};

struct Expr {
  ExprKind kind;
  int line = 0;
  int column = 0;

  // Ident: name. Literals: spelled text. Unary/Binary/Assign: op spelling.
  // Member: field name (op holds "." or "->"). Call: callee name if the
  // callee is a plain identifier, otherwise empty. Cast/SizeOf: type text.
  std::string text;
  std::string op;

  std::vector<std::unique_ptr<Expr>> children;

  explicit Expr(ExprKind k) : kind(k) {}
};

using ExprPtr = std::unique_ptr<Expr>;

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  Compound,
  Decl,       // type declarator [= init] (one declarator per Decl node)
  ExprStmt,
  If,         // children: cond expr; then_body; optional else_body
  For,
  While,
  DoWhile,
  Switch,
  Case,       // case X: or default: — owns the labeled statements up to
              // the next case at the same level
  Break,
  Continue,
  Return,
  Goto,
  Label,
  Null,       // lone ';'
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  SourceRange range;

  // Decl: declared variable name in `name`, declared type text in `type`,
  //       array extent expressions in `exprs` after the optional init.
  // Goto/Label: label name in `name`.
  // Case: case value text in `name` ("default" for default:).
  std::string name;
  std::string type;
  bool decl_is_pointer = false;
  bool decl_is_array = false;

  // Expressions owned by this statement:
  //  ExprStmt/Return: [0] = the expression (Return may be empty)
  //  Decl: [0] = initializer if present, then array extents
  //  If/While/DoWhile/Switch: [0] = condition
  //  For: cond/step appear here (see for_* flags); init is a child stmt
  std::vector<ExprPtr> exprs;

  // Child statements: Compound -> all; If -> then [, else];
  // For/While/DoWhile -> body (For may also carry an init Decl/ExprStmt
  // as child [0], flagged by for_has_init); Switch -> Case nodes and any
  // loose statements; Case/Label -> labeled statements.
  std::vector<StmtPtr> children;

  bool for_has_init = false;
  bool for_has_cond = false;
  bool for_has_step = false;

  explicit Stmt(StmtKind k) : kind(k) {}
};

// ---------------------------------------------------------------------------
// Declarations / translation unit
// ---------------------------------------------------------------------------

struct Param {
  std::string type;
  std::string name;
  bool is_pointer = false;
  bool is_array = false;
};

struct FunctionDef {
  std::string return_type;
  std::string name;
  std::vector<Param> params;
  StmtPtr body;  // Compound
  SourceRange range;
};

struct GlobalDecl {
  std::string text;  // raw source of the declaration line(s)
  SourceRange range;
};

struct TranslationUnit {
  std::vector<FunctionDef> functions;
  std::vector<GlobalDecl> globals;
  std::vector<std::string> directives;  // '#include ...' etc.

  /// Find a function by name; nullptr if absent.
  const FunctionDef* find_function(const std::string& name) const {
    for (const auto& f : functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
};

const char* stmt_kind_name(StmtKind kind);
const char* expr_kind_name(ExprKind kind);

/// Deep copy helpers (the dataset generator mutates template ASTs).
ExprPtr clone(const Expr& expr);
StmtPtr clone(const Stmt& stmt);

}  // namespace sevuldet::frontend
