// Error-resilient parsing for real-world scanning. A lex or parse error
// no longer drops the whole file: the source is split into top-level
// brace-balanced chunks (function definitions, declarations) and each
// chunk is re-parsed independently, padded with newlines so every AST
// node keeps its original 1-based source line. Chunks that still fail
// are returned as LostRegions — the scanner degrades them to the
// lex-fallback gadget path instead of losing the code, and every loss
// is counted in the frontend.drop.* metrics.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sevuldet/frontend/ast.hpp"

namespace sevuldet::frontend {

/// A top-level region that could not be parsed even in isolation.
struct LostRegion {
  int begin_line = 0;    // 1-based, inclusive
  int end_line = 0;      // 1-based, inclusive
  std::string reason;    // un-decorated LexError/ParseError message
  std::string text;      // raw source of the region
};

struct RecoveredParse {
  TranslationUnit unit;           // merged parse of the recoverable chunks
  std::vector<LostRegion> lost;   // regions that resisted recovery
  bool clean = true;              // full parse succeeded on the first try
  int chunks_total = 0;           // chunks attempted during recovery
  int chunks_recovered = 0;       // chunks that parsed in isolation
};

/// Parse `source`, recovering at top-level-declaration granularity on
/// failure. Never throws on malformed input: the worst case is a result
/// whose unit is empty and whose `lost` covers the whole file.
RecoveredParse parse_with_recovery(std::string_view source);

}  // namespace sevuldet::frontend
