// Source-like rendering of AST nodes. The slicer emits gadgets as text
// (one statement per line, as in the paper's Fig. 3), so every statement
// must render back to a compact, lexically faithful form.
#pragma once

#include <string>

#include "sevuldet/frontend/ast.hpp"

namespace sevuldet::frontend {

/// Render an expression to compact C text, e.g. "strncpy(dest, data, n)".
std::string expr_text(const Expr& expr);

/// Render the *header* of a statement — for control statements this is
/// the predicate line only ("if (n < 100)", "while (size > 0)"), for
/// simple statements the full text including any initializer. No trailing
/// semicolon or braces.
std::string stmt_header_text(const Stmt& stmt);

/// Render a whole statement tree with indentation (used by examples and
/// golden tests).
std::string stmt_tree_text(const Stmt& stmt, int indent = 0);

}  // namespace sevuldet::frontend
