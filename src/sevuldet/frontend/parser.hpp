// Recursive-descent parser for the C subset used by the datasets and the
// paper's examples. It produces the statement-level AST in ast.hpp.
//
// Scope: function definitions, global declarations, struct definitions
// (fields recorded textually), the eight control statements Algorithm 1
// cares about (if / else if / else / for / while / do-while / switch /
// case) plus goto/label/break/continue/return, and the full C expression
// grammar (assignment through primary, calls, indexing, member access,
// casts, sizeof). Preprocessor directives are captured by the lexer and
// surfaced on the TranslationUnit.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "sevuldet/frontend/ast.hpp"

namespace sevuldet::frontend {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column)
      : std::runtime_error(message + " at " + std::to_string(line) + ":" +
                           std::to_string(column)),
        line(line),
        column(column),
        raw_message_(message) {}
  /// The bare reason without the " at L:C" suffix — recovery code uses
  /// it for drop-reason labels.
  const std::string& raw_message() const { return raw_message_; }
  int line;
  int column;

 private:
  std::string raw_message_;
};

/// Parse a whole translation unit. Throws LexError / ParseError on
/// malformed input.
TranslationUnit parse(std::string_view source);

/// Parse a single statement (used by tests and the gadget walkthrough
/// example). The statement must be self-contained.
StmtPtr parse_statement(std::string_view source);

/// Parse a single expression.
ExprPtr parse_expression(std::string_view source);

}  // namespace sevuldet::frontend
