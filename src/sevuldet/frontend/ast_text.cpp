#include "sevuldet/frontend/ast_text.hpp"

namespace sevuldet::frontend {

namespace {

std::string render(const Expr& e);

std::string render_children_list(const Expr& e, std::size_t from) {
  std::string out;
  for (std::size_t i = from; i < e.children.size(); ++i) {
    if (i > from) out += ", ";
    out += render(*e.children[i]);
  }
  return out;
}

std::string render(const Expr& e) {
  switch (e.kind) {
    case ExprKind::Ident:
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::StringLit:
    case ExprKind::CharLit:
      return e.text;
    case ExprKind::Unary:
      return e.op + render(*e.children[0]);
    case ExprKind::PostfixUnary:
      return render(*e.children[0]) + e.op;
    case ExprKind::Binary:
      return render(*e.children[0]) + " " + e.op + " " + render(*e.children[1]);
    case ExprKind::Assign:
      return render(*e.children[0]) + " " + e.op + " " + render(*e.children[1]);
    case ExprKind::Ternary:
      return render(*e.children[0]) + " ? " + render(*e.children[1]) + " : " +
             render(*e.children[2]);
    case ExprKind::Call: {
      std::string callee = e.text.empty() ? render(*e.children[0]) : e.text;
      return callee + "(" + render_children_list(e, 1) + ")";
    }
    case ExprKind::Index:
      return render(*e.children[0]) + "[" + render(*e.children[1]) + "]";
    case ExprKind::Member:
      return render(*e.children[0]) + e.op + e.text;
    case ExprKind::Cast:
      return "(" + e.text + ")" + render(*e.children[0]);
    case ExprKind::SizeOf:
      if (e.children.empty()) return "sizeof(" + e.text + ")";
      return "sizeof " + render(*e.children[0]);
    case ExprKind::Comma:
      if (e.op == "{}") {
        // Built up in place: GCC 12 mis-fires -Wrestrict on the
        // `const char* + std::string&&` overload (libstdc++ PR105329).
        std::string out = "{";
        out += render_children_list(e, 0);
        out += '}';
        return out;
      }
      return render_children_list(e, 0);
  }
  return "<?>";
}

std::string decl_text(const Stmt& s) {
  std::string out = s.type + " ";
  if (s.decl_is_pointer) out += "*";
  out += s.name;
  std::size_t extent_from = s.for_has_init ? 1 : 0;  // [0] is initializer
  if (s.decl_is_array) {
    for (std::size_t i = extent_from; i < s.exprs.size(); ++i) {
      out += '[';
      out += render(*s.exprs[i]);
      out += ']';
    }
    if (s.exprs.size() == extent_from) out += "[]";
  }
  if (s.for_has_init) out += " = " + render(*s.exprs[0]);
  return out;
}

}  // namespace

std::string expr_text(const Expr& expr) { return render(expr); }

std::string stmt_header_text(const Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::Compound:
      return "{";
    case StmtKind::Decl: {
      std::string out = decl_text(stmt);
      for (const auto& extra : stmt.children) {
        out += ", " + decl_text(*extra);
      }
      return out;
    }
    case StmtKind::ExprStmt:
      return render(*stmt.exprs[0]);
    case StmtKind::If:
      return "if (" + render(*stmt.exprs[0]) + ")";
    case StmtKind::While:
      return "while (" + render(*stmt.exprs[0]) + ")";
    case StmtKind::DoWhile:
      return "do ... while (" + render(*stmt.exprs[0]) + ")";
    case StmtKind::Switch:
      return "switch (" + render(*stmt.exprs[0]) + ")";
    case StmtKind::Case:
      return stmt.name == "default" ? "default:" : "case " + stmt.name + ":";
    case StmtKind::For: {
      std::string out = "for (";
      if (stmt.for_has_init && !stmt.children.empty()) {
        out += stmt_header_text(*stmt.children[0]);
      }
      out += "; ";
      std::size_t expr_idx = 0;
      if (stmt.for_has_cond) out += render(*stmt.exprs[expr_idx++]);
      out += "; ";
      if (stmt.for_has_step) out += render(*stmt.exprs[expr_idx]);
      out += ")";
      return out;
    }
    case StmtKind::Break:
      return "break";
    case StmtKind::Continue:
      return "continue";
    case StmtKind::Return:
      return stmt.exprs.empty() ? "return" : "return " + render(*stmt.exprs[0]);
    case StmtKind::Goto:
      return "goto " + stmt.name;
    case StmtKind::Label:
      return stmt.name + ":";
    case StmtKind::Null:
      return ";";
  }
  return "<?>";
}

std::string stmt_tree_text(const Stmt& stmt, int indent) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = pad + stmt_header_text(stmt) + "\n";
  // Bodies of control statements and compounds.
  std::size_t child_from = 0;
  if (stmt.kind == StmtKind::For && stmt.for_has_init) child_from = 1;
  for (std::size_t i = child_from; i < stmt.children.size(); ++i) {
    if (stmt.kind == StmtKind::Decl) break;  // children are co-declarators
    out += stmt_tree_text(*stmt.children[i], indent + 1);
  }
  return out;
}

}  // namespace sevuldet::frontend
