#include "sevuldet/frontend/ast_queries.hpp"

#include <unordered_map>

namespace sevuldet::frontend {

namespace {

/// Base variable of an lvalue expression: a[i] -> a, *p -> p, s->f -> s.
const Expr* lvalue_base(const Expr& e) {
  switch (e.kind) {
    case ExprKind::Ident:
      return &e;
    case ExprKind::Index:
    case ExprKind::Member:
      return lvalue_base(*e.children[0]);
    case ExprKind::Unary:
      if (e.op == "*") return lvalue_base(*e.children[0]);
      return nullptr;
    case ExprKind::Cast:
      return lvalue_base(*e.children[0]);
    default:
      return nullptr;
  }
}

struct Walker {
  UseDef out;

  void use_lvalue_subscripts(const Expr& e) {
    // Reading or writing a[i] uses i; *p uses p; s->f uses s.
    switch (e.kind) {
      case ExprKind::Index:
        use_lvalue_subscripts(*e.children[0]);
        walk(*e.children[1], /*is_write=*/false);
        break;
      case ExprKind::Member:
      case ExprKind::Cast:
        use_lvalue_subscripts(*e.children[0]);
        break;
      case ExprKind::Unary:
        if (e.op == "*") use_lvalue_subscripts(*e.children[0]);
        break;
      default:
        break;
    }
  }

  void walk(const Expr& e, bool is_write) {
    switch (e.kind) {
      case ExprKind::Ident:
        if (is_write) {
          out.defs.insert(e.text);
        } else {
          out.uses.insert(e.text);
        }
        return;
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
      case ExprKind::StringLit:
      case ExprKind::CharLit:
        return;
      case ExprKind::Assign: {
        const Expr& lhs = *e.children[0];
        if (const Expr* base = lvalue_base(lhs)) {
          out.defs.insert(base->text);
          // Writing through a[i] / *p also *uses* the base (address
          // computation) and any subscripts; compound assignment reads
          // the old value too.
          if (lhs.kind != ExprKind::Ident || e.op != "=") {
            out.uses.insert(base->text);
          }
          use_lvalue_subscripts(lhs);
        } else {
          walk(lhs, /*is_write=*/false);
        }
        walk(*e.children[1], /*is_write=*/false);
        return;
      }
      case ExprKind::Unary:
        if (e.op == "++" || e.op == "--") {
          if (const Expr* base = lvalue_base(*e.children[0])) {
            out.defs.insert(base->text);
            out.uses.insert(base->text);
            use_lvalue_subscripts(*e.children[0]);
            return;
          }
        }
        if (e.op == "&") {
          // Taking an address is a use of the variable.
          walk(*e.children[0], /*is_write=*/false);
          return;
        }
        walk(*e.children[0], is_write);
        return;
      case ExprKind::PostfixUnary:
        if (const Expr* base = lvalue_base(*e.children[0])) {
          out.defs.insert(base->text);
          out.uses.insert(base->text);
          use_lvalue_subscripts(*e.children[0]);
          return;
        }
        walk(*e.children[0], /*is_write=*/false);
        return;
      case ExprKind::Call: {
        if (!e.text.empty()) out.calls.push_back(e.text);
        std::vector<int> out_params;
        bool writes = !e.text.empty() && library_out_params(e.text, out_params);
        for (std::size_t i = 1; i < e.children.size(); ++i) {
          const int arg_idx = static_cast<int>(i) - 1;
          bool is_out = false;
          if (writes) {
            for (int p : out_params) {
              if (p == arg_idx) is_out = true;
            }
          }
          const Expr& arg = *e.children[i];
          if (is_out) {
            const Expr* base = nullptr;
            if (arg.kind == ExprKind::Unary && arg.op == "&") {
              base = lvalue_base(*arg.children[0]);
            } else {
              base = lvalue_base(arg);
            }
            if (base != nullptr) {
              out.defs.insert(base->text);
              out.uses.insert(base->text);
              continue;
            }
          }
          walk(arg, /*is_write=*/false);
        }
        // A call through a function pointer also uses the pointer.
        if (e.text.empty()) walk(*e.children[0], /*is_write=*/false);
        return;
      }
      default:
        for (const auto& child : e.children) walk(*child, /*is_write=*/false);
        return;
    }
  }
};

}  // namespace

bool library_out_params(const std::string& callee, std::vector<int>& out_params) {
  // Map: function -> 0-based indices of pointer arguments it writes.
  static const std::unordered_map<std::string, std::vector<int>> kOutParams = {
      {"strcpy", {0}},   {"strncpy", {0}}, {"strcat", {0}},  {"strncat", {0}},
      {"memcpy", {0}},   {"memmove", {0}}, {"memset", {0}},  {"sprintf", {0}},
      {"snprintf", {0}}, {"gets", {0}},    {"fgets", {0}},   {"scanf", {1, 2, 3}},
      {"sscanf", {2, 3}},{"fscanf", {2, 3}},{"read", {1}},   {"fread", {0}},
      {"recv", {1}},     {"recvfrom", {1}},{"getcwd", {0}},  {"realpath", {1}},
      {"wcscpy", {0}},   {"wcsncpy", {0}}, {"swprintf", {0}},
      // free() invalidates its argument — modeling it as a def makes a
      // later use data-dependent on the free, so use-after-free order is
      // visible in slices (and UAF gadget pairs differ only by order).
      {"free", {0}},
  };
  auto it = kOutParams.find(callee);
  if (it == kOutParams.end()) return false;
  out_params = it->second;
  return true;
}

UseDef analyze_expr(const Expr& expr) {
  Walker w;
  w.walk(expr, /*is_write=*/false);
  return std::move(w.out);
}

UseDef analyze_stmt(const Stmt& stmt) {
  Walker w;
  switch (stmt.kind) {
    case StmtKind::Decl: {
      auto handle_decl = [&w](const Stmt& d) {
        w.out.defs.insert(d.name);
        std::size_t extent_from = 0;
        if (d.for_has_init) {
          w.walk(*d.exprs[0], /*is_write=*/false);
          extent_from = 1;
        }
        for (std::size_t i = extent_from; i < d.exprs.size(); ++i) {
          w.walk(*d.exprs[i], /*is_write=*/false);  // array extents
        }
      };
      handle_decl(stmt);
      for (const auto& extra : stmt.children) handle_decl(*extra);
      break;
    }
    case StmtKind::ExprStmt:
    case StmtKind::Return:
    case StmtKind::If:
    case StmtKind::While:
    case StmtKind::DoWhile:
    case StmtKind::Switch:
    case StmtKind::Case:
      for (const auto& e : stmt.exprs) w.walk(*e, /*is_write=*/false);
      break;
    case StmtKind::For:
      // Predicate unit covers cond + step; the init is its own unit.
      for (const auto& e : stmt.exprs) w.walk(*e, /*is_write=*/false);
      break;
    default:
      break;
  }
  return std::move(w.out);
}

}  // namespace sevuldet::frontend
