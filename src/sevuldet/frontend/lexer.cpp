#include "sevuldet/frontend/lexer.hpp"

#include <array>
#include <cctype>
#include <unordered_set>

namespace sevuldet::frontend {

bool is_c_keyword(std::string_view word) {
  static const std::unordered_set<std::string_view> kKeywords = {
      "auto",     "break",   "case",     "char",   "const",    "continue",
      "default",  "do",      "double",   "else",   "enum",     "extern",
      "float",    "for",     "goto",     "if",     "inline",   "int",
      "long",     "register","restrict", "return", "short",    "signed",
      "sizeof",   "static",  "struct",   "switch", "typedef",  "union",
      "unsigned", "void",    "volatile", "while",  "_Bool",    "bool",
  };
  return kKeywords.contains(word);
}

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Keyword: return "keyword";
    case TokenKind::IntLiteral: return "int-literal";
    case TokenKind::FloatLiteral: return "float-literal";
    case TokenKind::StringLiteral: return "string-literal";
    case TokenKind::CharLiteral: return "char-literal";
    case TokenKind::Punct: return "punct";
    case TokenKind::EndOfFile: return "eof";
  }
  return "?";
}

namespace {

// Multi-character punctuators, longest first so maximal munch works.
constexpr std::array<std::string_view, 19> kPuncts3 = {
    "<<=", ">>=", "...",
    // two-character fillers below keep the array single-sourced; the
    // scanner checks 3-char entries first, then 2-char, then 1-char.
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=",
};
constexpr std::string_view kPuncts2Extra[] = {"&=", "|=", "^="};

class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  LexResult run() {
    LexResult result;
    for (;;) {
      skip_trivia(result);
      if (at_end()) break;
      result.tokens.push_back(next_token());
    }
    Token eof;
    eof.kind = TokenKind::EndOfFile;
    eof.line = line_;
    eof.column = column_;
    result.tokens.push_back(std::move(eof));
    return result;
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_trivia(LexResult& result) {
    for (;;) {
      if (at_end()) return;
      char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        int start_line = line_, start_col = column_;
        advance();
        advance();
        for (;;) {
          if (at_end()) throw LexError("unterminated block comment", start_line, start_col);
          if (peek() == '*' && peek(1) == '/') {
            advance();
            advance();
            break;
          }
          advance();
        }
      } else if (c == '#' && column_ == 1) {
        // Preprocessor directive: record the raw line (with continuations).
        std::string directive;
        while (!at_end() && peek() != '\n') {
          if (peek() == '\\' && peek(1) == '\n') {
            advance();
            advance();
            directive += ' ';
            continue;
          }
          directive += advance();
        }
        result.directives.push_back(std::move(directive));
      } else {
        return;
      }
    }
  }

  Token next_token() {
    Token tok;
    tok.line = line_;
    tok.column = column_;
    char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
        word += advance();
      }
      tok.kind = is_c_keyword(word) ? TokenKind::Keyword : TokenKind::Identifier;
      tok.text = std::move(word);
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      return lex_number(tok);
    }
    if (c == '"') return lex_string(tok);
    if (c == '\'') return lex_char(tok);
    return lex_punct(tok);
  }

  Token lex_number(Token tok) {
    std::string text;
    bool is_float = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      text += advance();
      text += advance();
      while (!at_end() && std::isxdigit(static_cast<unsigned char>(peek()))) text += advance();
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
      if (peek() == '.') {
        is_float = true;
        text += advance();
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
      }
      if (peek() == 'e' || peek() == 'E') {
        char after = peek(1);
        if (std::isdigit(static_cast<unsigned char>(after)) || after == '+' || after == '-') {
          is_float = true;
          text += advance();
          if (peek() == '+' || peek() == '-') text += advance();
          while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
        }
      }
    }
    // Integer / float suffixes: u, l, ll, f combinations.
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L' ||
           peek() == 'f' || peek() == 'F') {
      if (peek() == 'f' || peek() == 'F') is_float = true;
      text += advance();
    }
    tok.kind = is_float ? TokenKind::FloatLiteral : TokenKind::IntLiteral;
    tok.text = std::move(text);
    return tok;
  }

  Token lex_string(Token tok) {
    std::string text;
    text += advance();  // opening quote
    for (;;) {
      if (at_end() || peek() == '\n') {
        throw LexError("unterminated string literal", tok.line, tok.column);
      }
      char c = advance();
      text += c;
      if (c == '\\') {
        if (at_end()) throw LexError("unterminated escape", tok.line, tok.column);
        text += advance();
      } else if (c == '"') {
        break;
      }
    }
    tok.kind = TokenKind::StringLiteral;
    tok.text = std::move(text);
    return tok;
  }

  Token lex_char(Token tok) {
    std::string text;
    text += advance();  // opening quote
    for (;;) {
      if (at_end() || peek() == '\n') {
        throw LexError("unterminated char literal", tok.line, tok.column);
      }
      char c = advance();
      text += c;
      if (c == '\\') {
        if (at_end()) throw LexError("unterminated escape", tok.line, tok.column);
        text += advance();
      } else if (c == '\'') {
        break;
      }
    }
    tok.kind = TokenKind::CharLiteral;
    tok.text = std::move(text);
    return tok;
  }

  Token lex_punct(Token tok) {
    std::string_view rest = src_.substr(pos_);
    for (std::string_view p : kPuncts3) {
      if (rest.substr(0, p.size()) == p) {
        for (std::size_t i = 0; i < p.size(); ++i) advance();
        tok.kind = TokenKind::Punct;
        tok.text = std::string(p);
        return tok;
      }
    }
    for (std::string_view p : kPuncts2Extra) {
      if (rest.substr(0, 2) == p) {
        advance();
        advance();
        tok.kind = TokenKind::Punct;
        tok.text = std::string(p);
        return tok;
      }
    }
    static constexpr std::string_view kSingles = "+-*/%<>=!&|^~?:;,.()[]{}";
    char c = peek();
    if (kSingles.find(c) != std::string_view::npos) {
      advance();
      tok.kind = TokenKind::Punct;
      tok.text = std::string(1, c);
      return tok;
    }
    throw LexError(std::string("unexpected character '") + c + "'", line_, column_);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

LexResult lex(std::string_view source) { return Scanner(source).run(); }

std::vector<Token> lex_tokens(std::string_view source) {
  LexResult result = lex(source);
  result.tokens.pop_back();  // drop EOF
  return std::move(result.tokens);
}

}  // namespace sevuldet::frontend
