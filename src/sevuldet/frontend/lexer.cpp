#include "sevuldet/frontend/lexer.hpp"

#include <array>

namespace sevuldet::frontend {

// Length-bucketed comparison chains instead of a hash set: every
// identifier the lexer produces goes through here, and short memcmp
// chains beat hashing the spelling at these lengths.
bool is_c_keyword(std::string_view w) {
  switch (w.size()) {
    case 2:
      return w == "do" || w == "if";
    case 3:
      return w == "for" || w == "int";
    case 4:
      return w == "auto" || w == "bool" || w == "case" || w == "char" ||
             w == "else" || w == "enum" || w == "goto" || w == "long" ||
             w == "void";
    case 5:
      return w == "_Bool" || w == "break" || w == "const" || w == "float" ||
             w == "short" || w == "union" || w == "while";
    case 6:
      return w == "double" || w == "extern" || w == "inline" ||
             w == "return" || w == "signed" || w == "sizeof" ||
             w == "static" || w == "struct" || w == "switch";
    case 7:
      return w == "default" || w == "typedef";
    case 8:
      return w == "continue" || w == "register" || w == "restrict" ||
             w == "unsigned" || w == "volatile";
    default:
      return false;
  }
}

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Keyword: return "keyword";
    case TokenKind::IntLiteral: return "int-literal";
    case TokenKind::FloatLiteral: return "float-literal";
    case TokenKind::StringLiteral: return "string-literal";
    case TokenKind::CharLiteral: return "char-literal";
    case TokenKind::Punct: return "punct";
    case TokenKind::EndOfFile: return "eof";
  }
  return "?";
}

namespace {

inline unsigned uc(char c) { return static_cast<unsigned char>(c); }

constexpr auto kIdentStart = [] {
  std::array<bool, 256> t{};
  for (unsigned c = 'a'; c <= 'z'; ++c) t[c] = true;
  for (unsigned c = 'A'; c <= 'Z'; ++c) t[c] = true;
  t[static_cast<unsigned>('_')] = true;
  return t;
}();

constexpr auto kIdentCont = [] {
  std::array<bool, 256> t{};
  for (unsigned c = 'a'; c <= 'z'; ++c) t[c] = true;
  for (unsigned c = 'A'; c <= 'Z'; ++c) t[c] = true;
  for (unsigned c = '0'; c <= '9'; ++c) t[c] = true;
  t[static_cast<unsigned>('_')] = true;
  return t;
}();

constexpr auto kDigit = [] {
  std::array<bool, 256> t{};
  for (unsigned c = '0'; c <= '9'; ++c) t[c] = true;
  return t;
}();

constexpr auto kHexDigit = [] {
  std::array<bool, 256> t{};
  for (unsigned c = '0'; c <= '9'; ++c) t[c] = true;
  for (unsigned c = 'a'; c <= 'f'; ++c) t[c] = true;
  for (unsigned c = 'A'; c <= 'F'; ++c) t[c] = true;
  return t;
}();

class Scanner {
 public:
  Scanner(std::string_view src, LexResult& out) : src_(src), out_(out) {}

  void run() {
    for (;;) {
      skip_trivia();
      if (at_end()) break;
      out_.tokens.push_back(next_token());
      fresh_line_ = false;
    }
    Token eof;
    eof.kind = TokenKind::EndOfFile;
    eof.line = line_;
    eof.column = column_;
    out_.tokens.push_back(eof);
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  // Length in bytes of a newline sequence starting at byte `i`
  // ('\n' = 1, "\r\n" = 2, lone '\r' = 1), or 0 if none.
  std::size_t newline_len(std::size_t i) const {
    if (i >= src_.size()) return 0;
    if (src_[i] == '\n') return 1;
    if (src_[i] == '\r') return i + 1 < src_.size() && src_[i + 1] == '\n' ? 2 : 1;
    return 0;
  }

  void take() {
    ++pos_;
    ++column_;
  }

  void take_newline(std::size_t len) {
    pos_ += len;
    ++line_;
    column_ = 1;
  }

  // If the scanner sits on a backslash line continuation inside a token,
  // consume it: stash the contiguous segment [start, pos_) in scratch_,
  // skip the splice, and restart the segment. finish_run() later interns
  // the stitched spelling into the arena.
  bool try_splice(std::size_t& start, bool& spliced) {
    if (peek() != '\\') return false;
    std::size_t nl = newline_len(pos_ + 1);
    if (nl == 0) return false;
    if (!spliced) {
      spliced = true;
      scratch_.clear();
    }
    scratch_.append(src_.data() + start, pos_ - start);
    take_newline(1 + nl);
    start = pos_;
    return true;
  }

  std::string_view finish_run(std::size_t start, bool spliced) {
    if (!spliced) return src_.substr(start, pos_ - start);
    scratch_.append(src_.data() + start, pos_ - start);
    return out_.arena.intern(scratch_);
  }

  void skip_trivia() {
    for (;;) {
      if (at_end()) return;
      char c = peek();
      if (c == '\n' || c == '\r') {
        take_newline(newline_len(pos_));
        fresh_line_ = true;
      } else if (c == ' ' || c == '\t' || c == '\v' || c == '\f') {
        take();
      } else if (c == '\\' && newline_len(pos_ + 1) > 0) {
        take_newline(1 + newline_len(pos_ + 1));  // splice between tokens
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n' && peek() != '\r') take();
      } else if (c == '/' && peek(1) == '*') {
        int start_line = line_, start_col = column_;
        take();
        take();
        for (;;) {
          if (at_end()) throw LexError("unterminated block comment", start_line, start_col);
          if (peek() == '*' && peek(1) == '/') {
            take();
            take();
            break;
          }
          std::size_t nl = newline_len(pos_);
          if (nl > 0) {
            take_newline(nl);
          } else {
            take();
          }
        }
      } else if (c == '#' && fresh_line_) {
        lex_directive();
      } else {
        return;
      }
    }
  }

  // Record the raw '#...' line. Continuations are replaced with a single
  // space (so "#define N \\\n 10" reads "#define N  10"); the trailing
  // '\r' of a CRLF line is excluded.
  void lex_directive() {
    std::size_t start = pos_;
    bool spliced = false;
    while (!at_end()) {
      char c = peek();
      if (c == '\n' || c == '\r') break;
      if (c == '\\' && newline_len(pos_ + 1) > 0) {
        if (!spliced) {
          spliced = true;
          scratch_.clear();
        }
        scratch_.append(src_.data() + start, pos_ - start);
        scratch_ += ' ';
        take_newline(1 + newline_len(pos_ + 1));
        start = pos_;
        continue;
      }
      take();
    }
    out_.directives.push_back(finish_run(start, spliced));
  }

  Token next_token() {
    Token tok;
    tok.line = line_;
    tok.column = column_;
    char c = peek();
    if (kIdentStart[uc(c)]) return lex_word(tok);
    if (kDigit[uc(c)] || (c == '.' && kDigit[uc(peek(1))])) return lex_number(tok);
    if (c == '"') return lex_quoted(tok, '"');
    if (c == '\'') return lex_quoted(tok, '\'');
    return lex_punct(tok);
  }

  Token lex_word(Token tok) {
    std::size_t start = pos_;
    bool spliced = false;
    for (;;) {
      if (kIdentCont[uc(peek())] && !at_end()) {
        take();
        continue;
      }
      if (try_splice(start, spliced)) continue;
      break;
    }
    tok.text = finish_run(start, spliced);
    tok.kind = is_c_keyword(tok.text) ? TokenKind::Keyword : TokenKind::Identifier;
    return tok;
  }

  Token lex_number(Token tok) {
    std::size_t start = pos_;
    bool spliced = false;
    // Consuming any splice before each lookahead keeps digit runs and
    // suffixes correct across continuations.
    auto cur = [&]() -> char {
      while (try_splice(start, spliced)) {
      }
      return peek();
    };
    bool is_float = false;
    if (cur() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      take();
      take();
      while (kHexDigit[uc(cur())] && !at_end()) take();
    } else {
      while (kDigit[uc(cur())] && !at_end()) take();
      if (cur() == '.') {
        is_float = true;
        take();
        while (kDigit[uc(cur())] && !at_end()) take();
      }
      if (cur() == 'e' || cur() == 'E') {
        char after = peek(1);
        if (kDigit[uc(after)] || after == '+' || after == '-') {
          is_float = true;
          take();
          if (cur() == '+' || cur() == '-') take();
          while (kDigit[uc(cur())] && !at_end()) take();
        }
      }
    }
    // Integer / float suffixes: u, l, ll, f combinations.
    for (;;) {
      char c = cur();
      if (c == 'u' || c == 'U' || c == 'l' || c == 'L') {
        take();
      } else if (c == 'f' || c == 'F') {
        is_float = true;
        take();
      } else {
        break;
      }
    }
    tok.kind = is_float ? TokenKind::FloatLiteral : TokenKind::IntLiteral;
    tok.text = finish_run(start, spliced);
    return tok;
  }

  Token lex_quoted(Token tok, char quote) {
    const char* unterminated =
        quote == '"' ? "unterminated string literal" : "unterminated char literal";
    std::size_t start = pos_;
    bool spliced = false;
    take();  // opening quote
    for (;;) {
      if (at_end() || peek() == '\n' || peek() == '\r') {
        throw LexError(unterminated, tok.line, tok.column);
      }
      char c = peek();
      if (c == '\\') {
        if (try_splice(start, spliced)) continue;
        take();  // backslash
        if (at_end()) throw LexError("unterminated escape", tok.line, tok.column);
        take();  // escaped character
        continue;
      }
      take();
      if (c == quote) break;
    }
    tok.kind = quote == '"' ? TokenKind::StringLiteral : TokenKind::CharLiteral;
    tok.text = finish_run(start, spliced);
    return tok;
  }

  // Maximal munch by first-character dispatch: one switch decides the
  // punctuator length instead of probing a longest-first table.
  Token lex_punct(Token tok) {
    char c = peek();
    char c1 = peek(1);
    std::size_t len = 0;
    switch (c) {
      case '<':
        len = c1 == '<' ? (peek(2) == '=' ? 3 : 2) : (c1 == '=' ? 2 : 1);
        break;
      case '>':
        len = c1 == '>' ? (peek(2) == '=' ? 3 : 2) : (c1 == '=' ? 2 : 1);
        break;
      case '.':
        len = c1 == '.' && peek(2) == '.' ? 3 : 1;
        break;
      case '-':
        len = c1 == '>' || c1 == '-' || c1 == '=' ? 2 : 1;
        break;
      case '+':
        len = c1 == '+' || c1 == '=' ? 2 : 1;
        break;
      case '&':
        len = c1 == '&' || c1 == '=' ? 2 : 1;
        break;
      case '|':
        len = c1 == '|' || c1 == '=' ? 2 : 1;
        break;
      case '*':
      case '/':
      case '%':
      case '=':
      case '!':
      case '^':
        len = c1 == '=' ? 2 : 1;
        break;
      case '~':
      case '?':
      case ':':
      case ';':
      case ',':
      case '(':
      case ')':
      case '[':
      case ']':
      case '{':
      case '}':
        len = 1;
        break;
      default:
        throw LexError(std::string("unexpected character '") + c + "'", line_,
                       column_);
    }
    tok.kind = TokenKind::Punct;
    tok.text = src_.substr(pos_, len);
    pos_ += len;
    column_ += static_cast<int>(len);
    return tok;
  }

  std::string_view src_;
  LexResult& out_;
  std::string scratch_;  // assembles spellings split by continuations
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  bool fresh_line_ = true;  // only whitespace seen since the last newline
};

}  // namespace

void lex_into(std::string_view source, LexResult& out) {
  out.tokens.clear();
  out.directives.clear();
  out.arena.reset();
  Scanner(source, out).run();
}

LexResult lex(std::string_view source) {
  LexResult result;
  lex_into(source, result);
  return result;
}

TokenStream lex_tokens(std::string_view source) {
  LexResult result = lex(source);
  result.tokens.pop_back();  // drop EOF
  TokenStream stream;
  stream.tokens = std::move(result.tokens);
  stream.arena = std::move(result.arena);
  return stream;
}

}  // namespace sevuldet::frontend
