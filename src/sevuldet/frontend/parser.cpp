#include "sevuldet/frontend/parser.hpp"

#include <algorithm>
#include <unordered_set>

#include "sevuldet/frontend/lexer.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::frontend {

namespace {

// Heterogeneous-lookup string set: contains(string_view) without
// materializing a std::string per probe (token texts are views now).
struct SvHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
using StringSet = std::unordered_set<std::string, SvHash, std::equal_to<>>;

const StringSet& builtin_type_names() {
  static const StringSet kTypes = {
      // Common typedef-style names treated as types even though the lexer
      // classifies them as identifiers.
      "size_t",   "ssize_t",  "ptrdiff_t", "wchar_t",  "FILE",
      "int8_t",   "int16_t",  "int32_t",   "int64_t",  "uint8_t",
      "uint16_t", "uint32_t", "uint64_t",  "uintptr_t","intptr_t",
      "uint",     "ulong",    "ushort",    "byte",     "twoIntsStruct",
      "hwaddr",   "NetClientState",
  };
  return kTypes;
}

bool is_type_keyword(const Token& tok) {
  if (tok.kind != TokenKind::Keyword) return false;
  static const std::unordered_set<std::string_view> kTypeKw = {
      "void", "char", "short", "int", "long", "float", "double", "signed",
      "unsigned", "struct", "union", "enum", "const", "volatile", "static",
      "extern", "register", "auto", "inline", "_Bool", "bool",
  };
  return kTypeKw.contains(tok.text);
}

class Parser {
 public:
  explicit Parser(std::string_view source)
      : lexed_(lex(source)), tokens_(lexed_.tokens) {
    // The whole LexResult stays alive as a member: tokens_ holds views
    // into `source` (owned by the caller for the duration of the parse)
    // and into lexed_.arena (spliced spellings).
    type_names_ = builtin_type_names();
  }

  TranslationUnit parse_unit() {
    TranslationUnit unit;
    unit.directives.assign(lexed_.directives.begin(), lexed_.directives.end());
    while (!peek().is(TokenKind::EndOfFile)) {
      parse_top_level(unit);
    }
    return unit;
  }

  StmtPtr parse_single_statement() {
    StmtPtr stmt = parse_stmt();
    expect_eof();
    return stmt;
  }

  ExprPtr parse_single_expression() {
    ExprPtr expr = parse_expr();
    expect_eof();
    return expr;
  }

 private:
  // --- token stream helpers ------------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    std::size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }

  const Token& advance() {
    const Token& tok = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return tok;
  }

  bool match_punct(std::string_view p) {
    if (peek().is_punct(p)) {
      advance();
      return true;
    }
    return false;
  }

  bool match_keyword(std::string_view k) {
    if (peek().is_keyword(k)) {
      advance();
      return true;
    }
    return false;
  }

  const Token& expect_punct(std::string_view p) {
    if (!peek().is_punct(p)) {
      throw ParseError("expected '" + std::string(p) + "', got '" +
                           std::string(peek().text) + "'",
                       peek().line, peek().column);
    }
    return advance();
  }

  void expect_eof() {
    if (!peek().is(TokenKind::EndOfFile)) {
      throw ParseError("trailing input '" + std::string(peek().text) + "'",
                       peek().line, peek().column);
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message + " (got '" + std::string(peek().text) + "')",
                     peek().line, peek().column);
  }

  bool is_type_start(std::size_t ahead = 0) const {
    const Token& tok = peek(ahead);
    if (is_type_keyword(tok)) return true;
    return tok.kind == TokenKind::Identifier && type_names_.contains(tok.text);
  }

  // --- top level -------------------------------------------------------

  void parse_top_level(TranslationUnit& unit) {
    if (match_keyword("typedef")) {
      // typedef <anything> NewName ; — record NewName as a type.
      std::vector<Token> body;
      int depth = 0;
      while (!peek().is(TokenKind::EndOfFile)) {
        if (peek().is_punct("{")) ++depth;
        if (peek().is_punct("}")) --depth;
        if (depth == 0 && peek().is_punct(";")) break;
        body.push_back(advance());
      }
      expect_punct(";");
      if (!body.empty() && body.back().kind == TokenKind::Identifier) {
        type_names_.emplace(body.back().text);
      }
      return;
    }

    if (peek().is_keyword("struct") || peek().is_keyword("union") ||
        peek().is_keyword("enum")) {
      // Could be a definition `struct X { ... };` or the start of a
      // function/global using the tag type. Definition iff '{' appears
      // before an identifier+'(' pattern.
      if (peek(1).kind == TokenKind::Identifier && peek(2).is_punct("{")) {
        GlobalDecl decl;
        decl.range.begin_line = peek().line;
        advance();  // struct/union/enum
        type_names_.emplace(peek().text);
        std::string tag(advance().text);
        decl.text = "struct " + tag;
        skip_balanced("{", "}");
        // optional trailing declarators
        while (!peek().is_punct(";") && !peek().is(TokenKind::EndOfFile)) advance();
        decl.range.end_line = peek().line;
        expect_punct(";");
        unit.globals.push_back(std::move(decl));
        return;
      }
    }

    // Type-led construct: function definition, prototype, or global
    // variable.
    if (!is_type_start()) {
      fail("expected declaration or function definition");
    }
    int start_line = peek().line;
    std::string type = parse_type_text();
    bool pointer = false;
    while (match_punct("*")) pointer = true;

    if (!peek().is(TokenKind::Identifier)) {
      // e.g. `struct X;` forward declaration
      GlobalDecl decl;
      decl.text = type;
      decl.range = {start_line, peek().line};
      while (!peek().is_punct(";") && !peek().is(TokenKind::EndOfFile)) advance();
      expect_punct(";");
      unit.globals.push_back(std::move(decl));
      return;
    }
    std::string name(advance().text);

    if (peek().is_punct("(")) {
      FunctionDef fn;
      fn.return_type = type + (pointer ? " *" : "");
      fn.name = name;
      fn.range.begin_line = start_line;
      parse_params(fn);
      if (match_punct(";")) {
        // Prototype — record as a global so the source round-trips.
        GlobalDecl decl;
        decl.text = fn.return_type + " " + fn.name + "(...)";
        decl.range = {start_line, start_line};
        unit.globals.push_back(std::move(decl));
        return;
      }
      fn.body = parse_compound();
      fn.range.end_line = fn.body->range.end_line;
      unit.functions.push_back(std::move(fn));
      return;
    }

    // Global variable declaration: capture textually.
    GlobalDecl decl;
    decl.text = type + " " + name;
    decl.range.begin_line = start_line;
    int depth = 0;
    while (!peek().is(TokenKind::EndOfFile)) {
      if (peek().is_punct("{")) ++depth;
      if (peek().is_punct("}")) --depth;
      if (depth == 0 && peek().is_punct(";")) break;
      advance();
    }
    decl.range.end_line = peek().line;
    expect_punct(";");
    unit.globals.push_back(std::move(decl));
  }

  void skip_balanced(std::string_view open, std::string_view close) {
    expect_punct(open);
    int depth = 1;
    while (depth > 0) {
      if (peek().is(TokenKind::EndOfFile)) fail("unbalanced brackets");
      if (peek().is_punct(open)) ++depth;
      if (peek().is_punct(close)) --depth;
      advance();
    }
  }

  std::string parse_type_text() {
    // Consume qualifiers + type words. At least one token is required.
    std::string text;
    bool saw_core = false;
    for (;;) {
      const Token& tok = peek();
      bool take = false;
      if (is_type_keyword(tok)) {
        take = true;
        if (tok.text != "const" && tok.text != "volatile" && tok.text != "static" &&
            tok.text != "extern" && tok.text != "register" && tok.text != "inline" &&
            tok.text != "auto") {
          saw_core = true;
        }
        if (tok.text == "struct" || tok.text == "union" || tok.text == "enum") {
          // struct Tag
          if (!text.empty()) text += ' ';
          text += advance().text;
          if (peek().kind == TokenKind::Identifier) {
            text += ' ';
            text += advance().text;
          }
          continue;
        }
      } else if (tok.kind == TokenKind::Identifier && type_names_.contains(tok.text) &&
                 !saw_core) {
        take = true;
        saw_core = true;
      }
      if (!take) break;
      if (!text.empty()) text += ' ';
      text += advance().text;
    }
    if (text.empty()) fail("expected type");
    return text;
  }

  void parse_params(FunctionDef& fn) {
    expect_punct("(");
    if (match_punct(")")) return;
    if (peek().is_keyword("void") && peek(1).is_punct(")")) {
      advance();
      advance();
      return;
    }
    for (;;) {
      if (peek().is_punct("...")) {
        advance();
        Param p;
        p.type = "...";
        fn.params.push_back(std::move(p));
      } else {
        Param p;
        p.type = parse_type_text();
        while (match_punct("*")) p.is_pointer = true;
        if (peek().kind == TokenKind::Identifier) p.name = advance().text;
        while (peek().is_punct("[")) {
          p.is_array = true;
          skip_balanced("[", "]");
        }
        fn.params.push_back(std::move(p));
      }
      if (match_punct(")")) break;
      expect_punct(",");
    }
  }

  // --- statements ------------------------------------------------------

  StmtPtr parse_compound() {
    auto stmt = std::make_unique<Stmt>(StmtKind::Compound);
    stmt->range.begin_line = peek().line;
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (peek().is(TokenKind::EndOfFile)) fail("unterminated block");
      stmt->children.push_back(parse_stmt());
    }
    stmt->range.end_line = peek().line;
    expect_punct("}");
    return stmt;
  }

  StmtPtr parse_stmt() {
    const Token& tok = peek();
    if (tok.is_punct("{")) return parse_compound();
    if (tok.is_punct(";")) {
      auto s = std::make_unique<Stmt>(StmtKind::Null);
      s->range = {tok.line, tok.line};
      advance();
      return s;
    }
    if (tok.is_keyword("if")) return parse_if();
    if (tok.is_keyword("for")) return parse_for();
    if (tok.is_keyword("while")) return parse_while();
    if (tok.is_keyword("do")) return parse_do_while();
    if (tok.is_keyword("switch")) return parse_switch();
    if (tok.is_keyword("case") || tok.is_keyword("default")) {
      fail("case label outside switch");
    }
    if (tok.is_keyword("break")) {
      auto s = std::make_unique<Stmt>(StmtKind::Break);
      s->range = {tok.line, tok.line};
      advance();
      expect_punct(";");
      return s;
    }
    if (tok.is_keyword("continue")) {
      auto s = std::make_unique<Stmt>(StmtKind::Continue);
      s->range = {tok.line, tok.line};
      advance();
      expect_punct(";");
      return s;
    }
    if (tok.is_keyword("return")) {
      auto s = std::make_unique<Stmt>(StmtKind::Return);
      s->range = {tok.line, tok.line};
      advance();
      if (!peek().is_punct(";")) s->exprs.push_back(parse_expr());
      s->range.end_line = peek().line;
      expect_punct(";");
      return s;
    }
    if (tok.is_keyword("goto")) {
      auto s = std::make_unique<Stmt>(StmtKind::Goto);
      s->range = {tok.line, tok.line};
      advance();
      if (!peek().is(TokenKind::Identifier)) fail("expected label after goto");
      s->name = advance().text;
      expect_punct(";");
      return s;
    }
    // Label: identifier ':' not followed by another ':' (no C++ scope op
    // in this subset) and not a case label.
    if (tok.kind == TokenKind::Identifier && peek(1).is_punct(":")) {
      auto s = std::make_unique<Stmt>(StmtKind::Label);
      s->range = {tok.line, tok.line};
      s->name = advance().text;
      expect_punct(":");
      if (!peek().is_punct("}")) s->children.push_back(parse_stmt());
      if (!s->children.empty()) {
        s->range.end_line = s->children.back()->range.end_line;
      }
      return s;
    }
    if (is_type_start()) return parse_decl();
    return parse_expr_stmt();
  }

  StmtPtr parse_decl() {
    // One Decl node per declarator; a multi-declarator statement becomes a
    // Compound-free sibling sequence wrapped in the first node's children?
    // No — callers expect a single StmtPtr, so multi-declarator lines are
    // represented as a Decl whose children hold the remaining declarators.
    int start_line = peek().line;
    std::string type = parse_type_text();

    auto parse_declarator = [&](Stmt& decl) {
      while (match_punct("*")) decl.decl_is_pointer = true;
      if (!peek().is(TokenKind::Identifier)) fail("expected declarator name");
      decl.name = advance().text;
      decl.type = type;
      while (peek().is_punct("[")) {
        decl.decl_is_array = true;
        advance();
        if (!peek().is_punct("]")) decl.exprs.push_back(parse_assign_expr());
        expect_punct("]");
      }
      if (match_punct("=")) {
        decl.exprs.insert(decl.exprs.begin(), parse_initializer());
        decl.for_has_init = true;  // reused flag: initializer present
      }
    };

    auto first = std::make_unique<Stmt>(StmtKind::Decl);
    first->range.begin_line = start_line;
    parse_declarator(*first);
    while (match_punct(",")) {
      auto extra = std::make_unique<Stmt>(StmtKind::Decl);
      extra->range.begin_line = start_line;
      parse_declarator(*extra);
      extra->range.end_line = peek().line;
      first->children.push_back(std::move(extra));
    }
    first->range.end_line = peek().line;
    expect_punct(";");
    return first;
  }

  ExprPtr parse_initializer() {
    if (peek().is_punct("{")) {
      // Brace initializer — represent as a Comma expr of elements.
      auto init = std::make_unique<Expr>(ExprKind::Comma);
      init->line = peek().line;
      init->op = "{}";
      advance();
      if (!peek().is_punct("}")) {
        for (;;) {
          init->children.push_back(parse_initializer());
          if (!match_punct(",")) break;
          if (peek().is_punct("}")) break;  // trailing comma
        }
      }
      expect_punct("}");
      return init;
    }
    return parse_assign_expr();
  }

  StmtPtr parse_expr_stmt() {
    auto s = std::make_unique<Stmt>(StmtKind::ExprStmt);
    s->range.begin_line = peek().line;
    s->exprs.push_back(parse_expr());
    s->range.end_line = peek().line;
    expect_punct(";");
    return s;
  }

  StmtPtr parse_if() {
    auto s = std::make_unique<Stmt>(StmtKind::If);
    s->range.begin_line = peek().line;
    advance();  // if
    expect_punct("(");
    s->exprs.push_back(parse_expr());
    expect_punct(")");
    s->children.push_back(parse_stmt());
    s->range.end_line = s->children.back()->range.end_line;
    if (match_keyword("else")) {
      s->children.push_back(parse_stmt());
      s->range.end_line = s->children.back()->range.end_line;
    }
    return s;
  }

  StmtPtr parse_while() {
    auto s = std::make_unique<Stmt>(StmtKind::While);
    s->range.begin_line = peek().line;
    advance();  // while
    expect_punct("(");
    s->exprs.push_back(parse_expr());
    expect_punct(")");
    s->children.push_back(parse_stmt());
    s->range.end_line = s->children.back()->range.end_line;
    return s;
  }

  StmtPtr parse_do_while() {
    auto s = std::make_unique<Stmt>(StmtKind::DoWhile);
    s->range.begin_line = peek().line;
    advance();  // do
    s->children.push_back(parse_stmt());
    if (!match_keyword("while")) fail("expected 'while' after do-body");
    expect_punct("(");
    s->exprs.push_back(parse_expr());
    expect_punct(")");
    s->range.end_line = peek().line;
    expect_punct(";");
    return s;
  }

  StmtPtr parse_for() {
    auto s = std::make_unique<Stmt>(StmtKind::For);
    s->range.begin_line = peek().line;
    advance();  // for
    expect_punct("(");
    if (!peek().is_punct(";")) {
      s->for_has_init = true;
      if (is_type_start()) {
        s->children.push_back(parse_decl());  // consumes ';'
      } else {
        auto init = std::make_unique<Stmt>(StmtKind::ExprStmt);
        init->range = {peek().line, peek().line};
        init->exprs.push_back(parse_expr());
        expect_punct(";");
        s->children.push_back(std::move(init));
      }
    } else {
      expect_punct(";");
    }
    if (!peek().is_punct(";")) {
      s->for_has_cond = true;
      s->exprs.push_back(parse_expr());
    }
    expect_punct(";");
    if (!peek().is_punct(")")) {
      s->for_has_step = true;
      s->exprs.push_back(parse_expr());
    }
    expect_punct(")");
    s->children.push_back(parse_stmt());
    s->range.end_line = s->children.back()->range.end_line;
    return s;
  }

  StmtPtr parse_switch() {
    auto s = std::make_unique<Stmt>(StmtKind::Switch);
    s->range.begin_line = peek().line;
    advance();  // switch
    expect_punct("(");
    s->exprs.push_back(parse_expr());
    expect_punct(")");
    expect_punct("{");
    StmtPtr current_case;
    while (!peek().is_punct("}")) {
      if (peek().is(TokenKind::EndOfFile)) fail("unterminated switch");
      if (peek().is_keyword("case") || peek().is_keyword("default")) {
        if (current_case) s->children.push_back(std::move(current_case));
        current_case = std::make_unique<Stmt>(StmtKind::Case);
        current_case->range.begin_line = peek().line;
        if (match_keyword("case")) {
          // case expression up to ':'
          ExprPtr value = parse_ternary_expr();
          current_case->name = expr_to_text_(*value);
          current_case->exprs.push_back(std::move(value));
        } else {
          advance();  // default
          current_case->name = "default";
        }
        expect_punct(":");
        current_case->range.end_line = current_case->range.begin_line;
        continue;
      }
      StmtPtr inner = parse_stmt();
      if (current_case) {
        current_case->range.end_line = inner->range.end_line;
        current_case->children.push_back(std::move(inner));
      } else {
        s->children.push_back(std::move(inner));  // unlabeled code (rare)
      }
    }
    if (current_case) s->children.push_back(std::move(current_case));
    s->range.end_line = peek().line;
    expect_punct("}");
    return s;
  }

  // --- expressions -------------------------------------------------------

  ExprPtr parse_expr() {
    ExprPtr lhs = parse_assign_expr();
    if (!peek().is_punct(",")) return lhs;
    auto comma = std::make_unique<Expr>(ExprKind::Comma);
    comma->line = lhs->line;
    comma->op = ",";
    comma->children.push_back(std::move(lhs));
    while (match_punct(",")) comma->children.push_back(parse_assign_expr());
    return comma;
  }

  ExprPtr parse_assign_expr() {
    ExprPtr lhs = parse_ternary_expr();
    static const std::unordered_set<std::string_view> kAssignOps = {
        "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^="};
    if (peek().kind == TokenKind::Punct && kAssignOps.contains(peek().text)) {
      auto node = std::make_unique<Expr>(ExprKind::Assign);
      node->line = peek().line;
      node->op = advance().text;
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_assign_expr());
      return node;
    }
    return lhs;
  }

  ExprPtr parse_ternary_expr() {
    ExprPtr cond = parse_binary_expr(0);
    if (!match_punct("?")) return cond;
    auto node = std::make_unique<Expr>(ExprKind::Ternary);
    node->line = cond->line;
    node->op = "?:";
    node->children.push_back(std::move(cond));
    node->children.push_back(parse_expr());
    expect_punct(":");
    node->children.push_back(parse_assign_expr());
    return node;
  }

  static int binary_precedence(const Token& tok) {
    if (tok.kind != TokenKind::Punct) return -1;
    std::string_view p = tok.text;
    if (p == "||") return 0;
    if (p == "&&") return 1;
    if (p == "|") return 2;
    if (p == "^") return 3;
    if (p == "&") return 4;
    if (p == "==" || p == "!=") return 5;
    if (p == "<" || p == ">" || p == "<=" || p == ">=") return 6;
    if (p == "<<" || p == ">>") return 7;
    if (p == "+" || p == "-") return 8;
    if (p == "*" || p == "/" || p == "%") return 9;
    return -1;
  }

  ExprPtr parse_binary_expr(int min_prec) {
    ExprPtr lhs = parse_unary_expr();
    for (;;) {
      int prec = binary_precedence(peek());
      if (prec < min_prec) return lhs;
      auto node = std::make_unique<Expr>(ExprKind::Binary);
      node->line = peek().line;
      node->op = advance().text;
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_binary_expr(prec + 1));
      lhs = std::move(node);
    }
  }

  bool looks_like_cast() const {
    if (!peek().is_punct("(")) return false;
    if (!is_type_start(1)) return false;
    // Scan forward: type tokens / '*' then ')'.
    std::size_t i = 1;
    bool saw_type = false;
    while (true) {
      const Token& tok = peek(i);
      if (is_type_keyword(tok) ||
          (tok.kind == TokenKind::Identifier && type_names_.contains(tok.text))) {
        saw_type = true;
        ++i;
        continue;
      }
      if (tok.is_punct("*")) {
        ++i;
        continue;
      }
      break;
    }
    return saw_type && peek(i).is_punct(")");
  }

  ExprPtr parse_unary_expr() {
    const Token& tok = peek();
    if (tok.kind == TokenKind::Punct) {
      static const std::unordered_set<std::string_view> kUnary = {
          "-", "+", "!", "~", "*", "&", "++", "--"};
      if (kUnary.contains(tok.text)) {
        auto node = std::make_unique<Expr>(ExprKind::Unary);
        node->line = tok.line;
        node->op = advance().text;
        node->children.push_back(parse_unary_expr());
        return node;
      }
    }
    if (tok.is_keyword("sizeof")) {
      auto node = std::make_unique<Expr>(ExprKind::SizeOf);
      node->line = tok.line;
      advance();
      if (peek().is_punct("(") && is_type_start(1)) {
        advance();
        node->text = parse_type_text();
        while (match_punct("*")) node->text += "*";
        expect_punct(")");
      } else {
        node->children.push_back(parse_unary_expr());
      }
      return node;
    }
    if (looks_like_cast()) {
      auto node = std::make_unique<Expr>(ExprKind::Cast);
      node->line = tok.line;
      advance();  // (
      node->text = parse_type_text();
      while (match_punct("*")) node->text += "*";
      expect_punct(")");
      node->children.push_back(parse_unary_expr());
      return node;
    }
    return parse_postfix_expr();
  }

  ExprPtr parse_postfix_expr() {
    ExprPtr expr = parse_primary_expr();
    for (;;) {
      if (peek().is_punct("(")) {
        auto call = std::make_unique<Expr>(ExprKind::Call);
        call->line = peek().line;
        if (expr->kind == ExprKind::Ident) call->text = expr->text;
        call->children.push_back(std::move(expr));
        advance();
        if (!peek().is_punct(")")) {
          for (;;) {
            call->children.push_back(parse_assign_expr());
            if (!match_punct(",")) break;
          }
        }
        expect_punct(")");
        expr = std::move(call);
      } else if (peek().is_punct("[")) {
        auto index = std::make_unique<Expr>(ExprKind::Index);
        index->line = peek().line;
        index->children.push_back(std::move(expr));
        advance();
        index->children.push_back(parse_expr());
        expect_punct("]");
        expr = std::move(index);
      } else if (peek().is_punct(".") || peek().is_punct("->")) {
        auto member = std::make_unique<Expr>(ExprKind::Member);
        member->line = peek().line;
        member->op = advance().text;
        if (!peek().is(TokenKind::Identifier)) fail("expected member name");
        member->text = advance().text;
        member->children.push_back(std::move(expr));
        expr = std::move(member);
      } else if (peek().is_punct("++") || peek().is_punct("--")) {
        auto post = std::make_unique<Expr>(ExprKind::PostfixUnary);
        post->line = peek().line;
        post->op = advance().text;
        post->children.push_back(std::move(expr));
        expr = std::move(post);
      } else {
        return expr;
      }
    }
  }

  ExprPtr parse_primary_expr() {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::Identifier: {
        auto node = std::make_unique<Expr>(ExprKind::Ident);
        node->line = tok.line;
        node->column = tok.column;
        node->text = advance().text;
        return node;
      }
      case TokenKind::IntLiteral: {
        auto node = std::make_unique<Expr>(ExprKind::IntLit);
        node->line = tok.line;
        node->text = advance().text;
        return node;
      }
      case TokenKind::FloatLiteral: {
        auto node = std::make_unique<Expr>(ExprKind::FloatLit);
        node->line = tok.line;
        node->text = advance().text;
        return node;
      }
      case TokenKind::StringLiteral: {
        auto node = std::make_unique<Expr>(ExprKind::StringLit);
        node->line = tok.line;
        node->text = advance().text;
        return node;
      }
      case TokenKind::CharLiteral: {
        auto node = std::make_unique<Expr>(ExprKind::CharLit);
        node->line = tok.line;
        node->text = advance().text;
        return node;
      }
      default:
        break;
    }
    if (match_punct("(")) {
      ExprPtr inner = parse_expr();
      expect_punct(")");
      return inner;
    }
    if (tok.kind == TokenKind::Keyword) {
      // NULL-ish keywords in expression position, e.g. sizeof handled
      // above; treat stray type keywords as identifiers so odd macros
      // don't kill parsing.
      auto node = std::make_unique<Expr>(ExprKind::Ident);
      node->line = tok.line;
      node->text = advance().text;
      return node;
    }
    fail("expected expression");
  }

  // Light textual rendering of a case-label expression.
  static std::string expr_to_text_(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::Ident:
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
      case ExprKind::StringLit:
      case ExprKind::CharLit:
        return expr.text;
      case ExprKind::Unary:
        return expr.op + expr_to_text_(*expr.children[0]);
      case ExprKind::Binary:
        return expr_to_text_(*expr.children[0]) + expr.op +
               expr_to_text_(*expr.children[1]);
      default:
        return "<expr>";
    }
  }

  LexResult lexed_;  // owns the token vector and the splice arena
  std::vector<Token>& tokens_;
  StringSet type_names_;
  std::size_t pos_ = 0;
};

}  // namespace

TranslationUnit parse(std::string_view source) {
  util::trace::ScopedSpan span("parse");
  TranslationUnit unit = Parser(source).parse_unit();
  util::metrics::counter_add("frontend.parse_calls");
  util::metrics::counter_add("frontend.functions_parsed",
                             static_cast<long long>(unit.functions.size()));
  return unit;
}

StmtPtr parse_statement(std::string_view source) {
  return Parser(source).parse_single_statement();
}

ExprPtr parse_expression(std::string_view source) {
  return Parser(source).parse_single_expression();
}

}  // namespace sevuldet::frontend
