// Compiled-corpus serialization: a versioned, checksummed little-endian
// binary format for Corpus (samples, vocabulary, stats) so a preprocessed
// corpus can be written once and reloaded in milliseconds instead of
// re-running Steps I-III. save/load round-trip byte-identically
// (save(load(save(c))) produces the same file bytes) and loading rejects
// truncated, corrupt, or version-mismatched files with a thrown
// std::runtime_error — never silently-partial data.
//
// corpus_fingerprint() hashes exactly the serialized content, so two
// corpora have equal fingerprints iff their samples, vocabulary, and
// stats are identical. The cache-equivalence tests and CI job compare
// cold-vs-warm builds through it. Transient build counters
// (CorpusStats::cache_hits/cache_misses) are deliberately excluded from
// both the serialization and the fingerprint.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sevuldet/dataset/corpus.hpp"
#include "sevuldet/util/binary_io.hpp"

namespace sevuldet::dataset {

/// Bump whenever the on-disk corpus layout changes; old files are then
/// rejected (and the per-case cache re-keys itself — see cache.hpp).
/// v2: every sample carries its GadgetGraph (node token spans + typed
/// control/data/call edge list) for the GAT backbone.
inline constexpr std::uint32_t kCorpusFormatVersion = 2;

/// One GadgetSample, shared by the corpus format and the per-case cache.
void write_sample(util::ByteWriter& out, const GadgetSample& sample);
GadgetSample read_sample(util::ByteReader& in);

/// Corpus <-> framed bytes (magic + version + size + payload + checksum).
std::string serialize_corpus(const Corpus& corpus);
Corpus deserialize_corpus(std::string_view bytes);

/// File helpers around serialize/deserialize.
void save_corpus(const Corpus& corpus, const std::string& path);
Corpus load_corpus(const std::string& path);

/// Content hash of the corpus (samples + vocab + stats, excluding cache
/// counters). Equal fingerprints <=> byte-identical serialization.
std::uint64_t corpus_fingerprint(const Corpus& corpus);

}  // namespace sevuldet::dataset
