// Synthetic SARD-like corpus generator. SARD itself consists of
// templated synthetic test cases (Juliet-style); this generator
// reproduces that statistical structure for the four special-token
// categories the paper slices on (FC/AU/PU/AE), each with a clean and a
// flawed variant, plus the two mechanisms the paper's gains rest on:
//
//  * ambiguous pairs (Fig. 1): a good/bad pair whose data+control-
//    dependence gadgets are textually identical after normalization but
//    whose path-sensitive gadgets differ (flaw in the then vs the else
//    branch of the same predicate);
//  * long variants: extra dependent-dataflow filler between guard and
//    sink pushes the gadget past typical RNN time steps, so fixed-length
//    truncation removes discriminative tokens (Definition 8's failure
//    mode).
//
// All randomness is seeded; identical configs produce identical corpora.
#pragma once

#include <vector>

#include "sevuldet/dataset/testcase.hpp"
#include "sevuldet/util/rng.hpp"

namespace sevuldet::dataset {

struct SardConfig {
  // Number of template instantiations per category; each instantiation
  // yields a good AND a bad program (mirroring SARD's "Mixed" cases).
  int pairs_per_category = 120;
  double ambiguous_fraction = 0.3;
  double long_fraction = 0.25;
  double interproc_fraction = 0.3;
  int long_filler_statements = 30;
  std::uint64_t seed = 2022;
};

std::vector<TestCase> generate_sard_like(const SardConfig& config);

/// Single-template entry points used by tests and the examples.
struct TemplateSpec {
  slicer::TokenCategory category;
  bool vulnerable = false;
  bool ambiguous = false;
  bool long_variant = false;
  bool interprocedural = false;
  int filler = 0;
  std::uint64_t seed = 1;
};
TestCase generate_case(const TemplateSpec& spec);

}  // namespace sevuldet::dataset
