// Xen-like real-world corpus (the substitute for the paper's eight Xen
// versions + 175 CVEs). Emits device-emulator-flavored programs — longer
// functions, register handling, early-return guards, DMA loops — with a
// vulnerable/patched pair structure mirroring NVD diffs, plus THREE
// flagship planted bugs modeled on the CVEs of Table VII:
//
//   CVE-2016-9776-like  mcf_fec receive loop: a guest-controlled buffer
//                       register of 0 keeps `size` constant — infinite
//                       loop (the paper's Fig. 6 example). Broad trigger
//                       (register == 0), so a fuzzer finds it.
//   CVE-2016-9104-like  9pfs xattr: `off + count > max` guard wraps for
//                       off near INT_MAX — OOB memcpy. Trigger hides
//                       behind a 32-bit protocol magic, so the fuzzer's
//                       mutation budget cannot reach it.
//   CVE-2016-4453-like  vmware_vga FIFO: unclamped guest-supplied
//                       cursor count drives an unbounded loop. Broad
//                       trigger (any huge count).
//
// Every planted program carries a `harness_main` entry that consumes
// fuzz input via the interpreter's input_byte/input_int natives.
#pragma once

#include <vector>

#include "sevuldet/dataset/testcase.hpp"
#include "sevuldet/util/rng.hpp"

namespace sevuldet::dataset {

struct RealWorldConfig {
  int clean_functions = 60;  // clean device-handler programs
  int variant_pairs = 8;     // extra vulnerable/patched pairs per CVE shape
  int preamble_chain = 40;   // register-decode chain feeding the 9776 loop
  std::uint64_t seed = 77;
};

struct PlantedBug {
  std::string name;    // "CVE-2016-9776-like"
  std::string cve;     // the QEMU CVE the paper lists (Table VII)
  std::string file;    // fictitious path, mirroring Table VII's paths
  TestCase testcase;   // the vulnerable program (with harness_main)
  slicer::TokenCategory category = slicer::TokenCategory::FunctionCall;
};

struct RealWorldCorpus {
  std::vector<TestCase> cases;      // labeled corpus for Table VI
  std::vector<PlantedBug> planted;  // exactly three, for Table VII / Fig. 6
};

RealWorldCorpus generate_realworld(const RealWorldConfig& config = {});

}  // namespace sevuldet::dataset
