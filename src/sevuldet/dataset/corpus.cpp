#include "sevuldet/dataset/corpus.hpp"

#include <numeric>
#include <optional>
#include <set>

#include "sevuldet/dataset/cache.hpp"
#include "sevuldet/dataset/gadget_graph.hpp"
#include "sevuldet/frontend/lexer.hpp"
#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/normalize/normalize.hpp"
#include "sevuldet/util/log.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/thread_pool.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::dataset {

long long CorpusStats::vulnerable() const {
  long long n = 0;
  for (const auto& [cat, counts] : by_category) n += counts.first;
  return n;
}

long long CorpusStats::total() const {
  long long n = 0;
  for (const auto& [cat, counts] : by_category) n += counts.second;
  return n;
}

std::string dedup_key(const std::vector<std::string>& tokens) {
  std::size_t total = 0;
  for (const auto& t : tokens) total += t.size() + 1;
  std::string key;
  key.reserve(total);
  for (const auto& t : tokens) {
    key += t;
    key += '\0';  // cannot occur inside a normalized token => injective
  }
  return key;
}

namespace {

/// Everything one test case contributes, produced independently of every
/// other case so the cases can be processed on worker threads. Global,
/// order-dependent state (dedup, stats) is applied at merge time.
struct CaseOutput {
  std::vector<GadgetSample> samples;
  bool parse_failed = false;
  bool from_cache = false;
};

CaseOutput process_case(const TestCase& tc, const CorpusOptions& options) {
  CaseOutput out;
  graph::ProgramGraph program;
  try {
    program = graph::build_program_graph(tc.source);
  } catch (const frontend::LexError&) {
    out.parse_failed = true;
    return out;
  } catch (const frontend::ParseError&) {
    out.parse_failed = true;
    return out;
  }

  for (const auto& token : slicer::find_special_tokens(program)) {
    slicer::CodeGadget gadget =
        slicer::generate_gadget(program, token, options.gadget);
    if (gadget.lines.empty()) continue;

    // Step II: label from the manifest's flagged lines.
    int label = 0;
    for (const auto& line : gadget.lines) {
      if (tc.vulnerable_lines.contains(line.line)) label = 1;
    }

    normalize::NormalizedGadget norm = normalize::normalize_gadget(gadget);
    if (norm.tokens.empty()) continue;

    GadgetSample sample;
    sample.graph = build_gadget_graph(program, gadget, norm);
    sample.tokens = std::move(norm.tokens);
    sample.label = label;
    if (label == 1) sample.cwe = tc.cwe;
    sample.category = token.category;
    sample.case_id = tc.id;
    sample.from_ambiguous = tc.ambiguous_pair;
    sample.from_long = tc.long_variant;
    out.samples.push_back(std::move(sample));
  }
  return out;
}

/// Cache-aware per-case step: serve from the content-addressed cache
/// when the key matches, otherwise run Steps I-III and store the result.
/// Pure per case (each key maps to one distinct file), so it is safe on
/// worker threads.
CaseOutput produce_case(const TestCase& tc, const CorpusOptions& options,
                        const CorpusCache* cache) {
  if (cache == nullptr) return process_case(tc, options);
  const std::string key = case_cache_key(tc, options.gadget);
  if (std::optional<CachedCase> hit = cache->load(key)) {
    CaseOutput out;
    out.samples = std::move(hit->samples);
    out.parse_failed = hit->parse_failed;
    out.from_cache = true;
    return out;
  }
  CaseOutput out = process_case(tc, options);
  cache->store(key, CachedCase{out.samples, out.parse_failed});
  return out;
}

}  // namespace

Corpus build_corpus(const std::vector<TestCase>& cases,
                    const CorpusOptions& options) {
  util::trace::ScopedSpan span("corpus.build");
  // Per-case extraction is pure, so it parallelizes; the merge below is
  // sequential in input order, which keeps the result byte-identical to
  // a serial build regardless of thread count — and, with cache_dir set,
  // regardless of which cases hit the cache.
  std::optional<CorpusCache> cache;
  if (!options.cache_dir.empty()) cache.emplace(options.cache_dir);
  const CorpusCache* cache_ptr = cache ? &*cache : nullptr;

  const int threads = util::resolve_threads(options.threads);
  std::vector<CaseOutput> outputs;
  if (threads > 1 && cases.size() > 1) {
    util::ThreadPool pool(threads);
    outputs = pool.parallel_map(cases.size(), [&](std::size_t i) {
      return produce_case(cases[i], options, cache_ptr);
    });
  } else {
    outputs.reserve(cases.size());
    for (const TestCase& tc : cases) {
      outputs.push_back(produce_case(tc, options, cache_ptr));
    }
  }

  Corpus corpus;
  std::set<std::pair<std::string, int>> seen;  // for optional dedup
  for (CaseOutput& out : outputs) {
    if (cache) ++(out.from_cache ? corpus.stats.cache_hits : corpus.stats.cache_misses);
    if (out.parse_failed) {
      ++corpus.stats.parse_failures;
      continue;
    }
    for (GadgetSample& sample : out.samples) {
      if (options.deduplicate &&
          !seen.insert({dedup_key(sample.tokens), sample.label}).second) {
        util::metrics::counter_add("corpus.drop.duplicate");
        continue;
      }
      auto& counts = corpus.stats.by_category[sample.category];
      counts.first += sample.label;
      ++counts.second;
      corpus.samples.push_back(std::move(sample));
    }
  }
  // Domain counters flow to the metrics registry; the CorpusStats fields
  // stay as this build's snapshot view of the same counts (callers and
  // the corpus fingerprint keep reading the struct, unchanged).
  util::metrics::counter_add("corpus.builds");
  util::metrics::counter_add("corpus.cases",
                             static_cast<long long>(cases.size()));
  util::metrics::counter_add("corpus.samples",
                             static_cast<long long>(corpus.samples.size()));
  util::metrics::counter_add("corpus.parse_failures",
                             corpus.stats.parse_failures);
  if (cache) {
    util::metrics::counter_add("corpus.cache_hits", corpus.stats.cache_hits);
    util::metrics::counter_add("corpus.cache_misses",
                               corpus.stats.cache_misses);
  }
  return corpus;
}

void encode_corpus(Corpus& corpus, const std::vector<std::size_t>& vocab_from,
                   int min_token_count) {
  corpus.vocab = normalize::Vocabulary();
  for (std::size_t idx : vocab_from) {
    corpus.vocab.count_all(corpus.samples[idx].tokens);
  }
  corpus.vocab.freeze(min_token_count);
  for (auto& sample : corpus.samples) {
    sample.ids = corpus.vocab.encode(sample.tokens);
  }
}

void encode_corpus(Corpus& corpus, int min_token_count) {
  std::vector<std::size_t> all(corpus.samples.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  encode_corpus(corpus, all, min_token_count);
}

std::vector<std::vector<int>> corpus_sentences(const Corpus& corpus,
                                               const std::vector<std::size_t>& idx) {
  std::vector<std::vector<int>> sentences;
  sentences.reserve(idx.size());
  for (std::size_t i : idx) sentences.push_back(corpus.samples[i].ids);
  return sentences;
}

}  // namespace sevuldet::dataset
