#include "sevuldet/dataset/corpus.hpp"

#include <numeric>
#include <set>

#include "sevuldet/frontend/lexer.hpp"
#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/normalize/normalize.hpp"
#include "sevuldet/util/log.hpp"

namespace sevuldet::dataset {

long long CorpusStats::vulnerable() const {
  long long n = 0;
  for (const auto& [cat, counts] : by_category) n += counts.first;
  return n;
}

long long CorpusStats::total() const {
  long long n = 0;
  for (const auto& [cat, counts] : by_category) n += counts.second;
  return n;
}

Corpus build_corpus(const std::vector<TestCase>& cases,
                    const CorpusOptions& options) {
  Corpus corpus;
  std::set<std::pair<std::string, int>> seen;  // for optional dedup

  for (const TestCase& tc : cases) {
    graph::ProgramGraph program;
    try {
      program = graph::build_program_graph(tc.source);
    } catch (const frontend::LexError&) {
      ++corpus.stats.parse_failures;
      continue;
    } catch (const frontend::ParseError&) {
      ++corpus.stats.parse_failures;
      continue;
    }

    for (const auto& token : slicer::find_special_tokens(program)) {
      slicer::CodeGadget gadget =
          slicer::generate_gadget(program, token, options.gadget);
      if (gadget.lines.empty()) continue;

      // Step II: label from the manifest's flagged lines.
      int label = 0;
      for (const auto& line : gadget.lines) {
        if (tc.vulnerable_lines.contains(line.line)) label = 1;
      }

      normalize::NormalizedGadget norm = normalize::normalize_gadget(gadget);
      if (norm.tokens.empty()) continue;

      if (options.deduplicate) {
        std::string key;
        for (const auto& t : norm.tokens) {
          key += t;
          key += ' ';
        }
        if (!seen.insert({key, label}).second) continue;
      }

      GadgetSample sample;
      sample.tokens = std::move(norm.tokens);
      sample.label = label;
      if (label == 1) sample.cwe = tc.cwe;
      sample.category = token.category;
      sample.case_id = tc.id;
      sample.from_ambiguous = tc.ambiguous_pair;
      sample.from_long = tc.long_variant;
      corpus.samples.push_back(std::move(sample));

      auto& counts = corpus.stats.by_category[token.category];
      counts.first += label;
      ++counts.second;
    }
  }
  return corpus;
}

void encode_corpus(Corpus& corpus, const std::vector<std::size_t>& vocab_from,
                   int min_token_count) {
  corpus.vocab = normalize::Vocabulary();
  for (std::size_t idx : vocab_from) {
    corpus.vocab.count_all(corpus.samples[idx].tokens);
  }
  corpus.vocab.freeze(min_token_count);
  for (auto& sample : corpus.samples) {
    sample.ids = corpus.vocab.encode(sample.tokens);
  }
}

void encode_corpus(Corpus& corpus, int min_token_count) {
  std::vector<std::size_t> all(corpus.samples.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  encode_corpus(corpus, all, min_token_count);
}

std::vector<std::vector<int>> corpus_sentences(const Corpus& corpus,
                                               const std::vector<std::size_t>& idx) {
  std::vector<std::vector<int>> sentences;
  sentences.reserve(idx.size());
  for (std::size_t i : idx) sentences.push_back(corpus.samples[i].ids);
  return sentences;
}

}  // namespace sevuldet::dataset
