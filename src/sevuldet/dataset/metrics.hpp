// Evaluation metrics (Section IV-A of the paper): FPR, FNR, Accuracy,
// Precision, and the paper's F1 form F1 = 2·P·(1-FNR) / (P + (1-FNR)),
// which equals the standard harmonic mean of precision and recall —
// plus the threshold-free quality metrics the evaluation breakdown
// reports add: rank-based ROC AUC and a reliability table with expected
// calibration error (ECE).
#pragma once

#include <string>
#include <vector>

namespace sevuldet::dataset {

struct Confusion {
  long long tp = 0;
  long long fp = 0;
  long long tn = 0;
  long long fn = 0;

  void record(bool predicted_positive, bool actually_positive) {
    if (predicted_positive && actually_positive) ++tp;
    else if (predicted_positive && !actually_positive) ++fp;
    else if (!predicted_positive && actually_positive) ++fn;
    else ++tn;
  }

  long long total() const { return tp + fp + tn + fn; }

  double fpr() const;        // FP / (FP + TN)
  double fnr() const;        // FN / (FN + TP)
  double accuracy() const;   // (TP + TN) / total
  double precision() const;  // TP / (TP + FP)
  double recall() const { return 1.0 - fnr(); }
  double f1() const;

  /// "FPR=.. FNR=.. A=.. P=.. F1=.." percentages with one decimal.
  std::string summary() const;

  Confusion& operator+=(const Confusion& other);
};

/// One scored prediction, the input to the threshold-free metrics.
struct ScoredPrediction {
  float probability = 0.0f;
  int label = 0;  // 1 vulnerable / 0 clean
};

/// Area under the ROC curve via the rank statistic (Mann-Whitney U):
/// the probability a random vulnerable sample scores above a random
/// clean one, ties counted half. Returns 0.5 when either class is
/// absent (no ranking information).
double roc_auc(const std::vector<ScoredPrediction>& predictions);

/// One row of the reliability table: predictions whose probability fell
/// into [lower, upper).
struct CalibrationBin {
  double lower = 0.0;
  double upper = 0.0;
  long long count = 0;
  double mean_probability = 0.0;  // average predicted probability (confidence)
  double frac_positive = 0.0;     // empirical vulnerable fraction (accuracy)
};

/// Equal-width reliability table + expected calibration error
/// ECE = Σ_b (n_b / N) · |frac_positive_b − mean_probability_b|.
struct Calibration {
  std::vector<CalibrationBin> bins;
  double ece = 0.0;
};

inline constexpr int kCalibrationBins = 10;

Calibration calibrate(const std::vector<ScoredPrediction>& predictions,
                      int bins = kCalibrationBins);

}  // namespace sevuldet::dataset
