// Evaluation metrics (Section IV-A of the paper): FPR, FNR, Accuracy,
// Precision, and the paper's F1 form F1 = 2·P·(1-FNR) / (P + (1-FNR)),
// which equals the standard harmonic mean of precision and recall.
#pragma once

#include <string>

namespace sevuldet::dataset {

struct Confusion {
  long long tp = 0;
  long long fp = 0;
  long long tn = 0;
  long long fn = 0;

  void record(bool predicted_positive, bool actually_positive) {
    if (predicted_positive && actually_positive) ++tp;
    else if (predicted_positive && !actually_positive) ++fp;
    else if (!predicted_positive && actually_positive) ++fn;
    else ++tn;
  }

  long long total() const { return tp + fp + tn + fn; }

  double fpr() const;        // FP / (FP + TN)
  double fnr() const;        // FN / (FN + TP)
  double accuracy() const;   // (TP + TN) / total
  double precision() const;  // TP / (TP + FP)
  double recall() const { return 1.0 - fnr(); }
  double f1() const;

  /// "FPR=.. FNR=.. A=.. P=.. F1=.." percentages with one decimal.
  std::string summary() const;

  Confusion& operator+=(const Confusion& other);
};

}  // namespace sevuldet::dataset
