#include "sevuldet/dataset/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "sevuldet/util/strings.hpp"

namespace sevuldet::dataset {

double Confusion::fpr() const {
  const long long denom = fp + tn;
  return denom == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(denom);
}

double Confusion::fnr() const {
  const long long denom = fn + tp;
  return denom == 0 ? 0.0 : static_cast<double>(fn) / static_cast<double>(denom);
}

double Confusion::accuracy() const {
  const long long t = total();
  return t == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(t);
}

double Confusion::precision() const {
  const long long denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double Confusion::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

std::string Confusion::summary() const {
  using util::fmt;
  return "FPR=" + fmt(fpr() * 100, 1) + "% FNR=" + fmt(fnr() * 100, 1) +
         "% A=" + fmt(accuracy() * 100, 1) + "% P=" + fmt(precision() * 100, 1) +
         "% F1=" + fmt(f1() * 100, 1) + "%";
}

Confusion& Confusion::operator+=(const Confusion& other) {
  tp += other.tp;
  fp += other.fp;
  tn += other.tn;
  fn += other.fn;
  return *this;
}

double roc_auc(const std::vector<ScoredPrediction>& predictions) {
  // Rank statistic with average ranks for ties:
  // AUC = (Σ ranks of positives − P(P+1)/2) / (P·N).
  std::vector<std::size_t> order(predictions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return predictions[a].probability < predictions[b].probability;
  });

  double positive_rank_sum = 0.0;
  long long positives = 0, negatives = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j < order.size() && predictions[order[j]].probability ==
                                   predictions[order[i]].probability) {
      ++j;
    }
    // Tied block [i, j): every member gets the average rank.
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) +
                                   static_cast<double>(j));
    for (std::size_t k = i; k < j; ++k) {
      if (predictions[order[k]].label == 1) {
        positive_rank_sum += avg_rank;
        ++positives;
      } else {
        ++negatives;
      }
    }
    i = j;
  }
  if (positives == 0 || negatives == 0) return 0.5;
  const double p = static_cast<double>(positives);
  const double n = static_cast<double>(negatives);
  return (positive_rank_sum - p * (p + 1.0) / 2.0) / (p * n);
}

Calibration calibrate(const std::vector<ScoredPrediction>& predictions,
                      int bins) {
  Calibration out;
  out.bins.resize(static_cast<std::size_t>(std::max(1, bins)));
  const double width = 1.0 / static_cast<double>(out.bins.size());
  for (std::size_t b = 0; b < out.bins.size(); ++b) {
    out.bins[b].lower = width * static_cast<double>(b);
    out.bins[b].upper = width * static_cast<double>(b + 1);
  }
  std::vector<double> prob_sum(out.bins.size(), 0.0);
  std::vector<long long> pos(out.bins.size(), 0);
  for (const auto& pred : predictions) {
    const double p = std::clamp(static_cast<double>(pred.probability), 0.0, 1.0);
    std::size_t b = std::min(out.bins.size() - 1,
                             static_cast<std::size_t>(p / width));
    ++out.bins[b].count;
    prob_sum[b] += p;
    pos[b] += pred.label == 1 ? 1 : 0;
  }
  const double total = static_cast<double>(predictions.size());
  for (std::size_t b = 0; b < out.bins.size(); ++b) {
    if (out.bins[b].count == 0) continue;
    const double count = static_cast<double>(out.bins[b].count);
    out.bins[b].mean_probability = prob_sum[b] / count;
    out.bins[b].frac_positive = static_cast<double>(pos[b]) / count;
    out.ece += (count / total) *
               std::abs(out.bins[b].frac_positive - out.bins[b].mean_probability);
  }
  return out;
}

}  // namespace sevuldet::dataset
