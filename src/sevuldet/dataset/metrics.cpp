#include "sevuldet/dataset/metrics.hpp"

#include "sevuldet/util/strings.hpp"

namespace sevuldet::dataset {

double Confusion::fpr() const {
  const long long denom = fp + tn;
  return denom == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(denom);
}

double Confusion::fnr() const {
  const long long denom = fn + tp;
  return denom == 0 ? 0.0 : static_cast<double>(fn) / static_cast<double>(denom);
}

double Confusion::accuracy() const {
  const long long t = total();
  return t == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(t);
}

double Confusion::precision() const {
  const long long denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double Confusion::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

std::string Confusion::summary() const {
  using util::fmt;
  return "FPR=" + fmt(fpr() * 100, 1) + "% FNR=" + fmt(fnr() * 100, 1) +
         "% A=" + fmt(accuracy() * 100, 1) + "% P=" + fmt(precision() * 100, 1) +
         "% F1=" + fmt(f1() * 100, 1) + "%";
}

Confusion& Confusion::operator+=(const Confusion& other) {
  tp += other.tp;
  fp += other.fp;
  tn += other.tn;
  fn += other.fn;
  return *this;
}

}  // namespace sevuldet::dataset
