#include "sevuldet/dataset/sard_generator.hpp"

#include <array>
#include <string>

namespace sevuldet::dataset {

namespace {

using slicer::TokenCategory;

/// Deterministic identifier variation: every case draws fresh names so
/// the corpus is textually diverse before normalization.
class Namer {
 public:
  explicit Namer(util::Rng& rng) : rng_(rng) {}

  std::string var(const char* role) {
    static const std::array<const char*, 8> kSuffixes = {
        "", "_val", "_buf", "_tmp", "2", "_in", "_x", "_cur"};
    return std::string(role) + kSuffixes[rng_.uniform(kSuffixes.size())];
  }

  std::string fn(const char* role) {
    static const std::array<const char*, 6> kPrefixes = {
        "do_", "run_", "handle_", "proc_", "my_", "impl_"};
    return std::string(kPrefixes[rng_.uniform(kPrefixes.size())]) + role;
  }

 private:
  util::Rng& rng_;
};

/// Emit a dependent dataflow chain `int v1 = seed op c; ... name = vK;`
/// so the backward slice of anything using `name` grows by `count`
/// statements (the long-variant mechanism).
void emit_chain(CodeWriter& w, util::Rng& rng, const std::string& indent,
                const std::string& seed_expr, const std::string& name, int count) {
  // Bitwise ops dominate so the chain does not flood the AE special-token
  // category (chains exist for dependence length, not arithmetic).
  static const std::array<const char*, 4> kOps = {"^", "|", "^", "|"};
  std::string prev = seed_expr;
  for (int i = 0; i < count; ++i) {
    std::string cur = name + "_c" + std::to_string(i);
    w.line(indent + "int " + cur + " = " + prev + " " +
           kOps[rng.uniform(kOps.size())] + " " +
           std::to_string(1 + rng.uniform(13)) + ";");
    prev = cur;
  }
  w.line(indent + "int " + name + " = " + prev + ";");
}

/// Unrelated texture so sources differ even when gadgets coincide.
void emit_texture(CodeWriter& w, util::Rng& rng, const std::string& indent) {
  if (rng.bernoulli(0.5)) {
    std::string t = "aux" + std::to_string(rng.uniform(90));
    w.line(indent + "int " + t + " = " + std::to_string(rng.uniform(100)) + ";");
    w.line(indent + t + " = " + t + " * 3;");
  }
}

struct Emitted {
  CodeWriter writer;
  std::set<int> vulnerable_lines;
};

/// Append benign helper functions with their own (safe) special tokens so
/// the gadget-level vulnerable ratio lands in the paper's 5-10% minority
/// regime (Table I) rather than near parity.
void emit_benign_helpers(CodeWriter& w, util::Rng& rng, int count) {
  for (int h = 0; h < count; ++h) {
    const std::string suffix = std::to_string(rng.uniform(10000));
    switch (rng.uniform(4)) {
      case 0: {  // safe library call
        w.line("void util_copy" + suffix + "(char *out, char *in) {");
        w.line("  char stage[128];");
        w.line("  int n = (int)strlen(in);");
        w.line("  if (n < 128) {");
        w.line("    strncpy(stage, in, n);");
        w.line("    stage[n] = 0;");
        w.line("    strncpy(out, stage, n);");
        w.line("  }");
        w.line("}");
        break;
      }
      case 1: {  // safe array walk
        const int sz = 8 + static_cast<int>(rng.uniform(12)) * 4;
        w.line("int util_sum" + suffix + "(int seed) {");
        w.line("  int cells[" + std::to_string(sz) + "];");
        w.line("  int acc = 0;");
        w.line("  for (int i = 0; i < " + std::to_string(sz) + "; i++) {");
        w.line("    cells[i] = seed + i;");
        w.line("    acc = acc + cells[i];");
        w.line("  }");
        w.line("  return acc;");
        w.line("}");
        break;
      }
      case 2: {  // safe pointer use
        w.line("void util_set" + suffix + "(int v) {");
        w.line("  char *slot = (char *)malloc(32);");
        w.line("  if (slot != NULL) {");
        w.line("    *slot = (char)v;");
        w.line("    free(slot);");
        w.line("  }");
        w.line("}");
        break;
      }
      default: {  // safe arithmetic
        w.line("int util_scale" + suffix + "(int a, int b) {");
        w.line("  int limited = a % 100;");
        w.line("  int scaled = limited * " + std::to_string(1 + rng.uniform(7)) + ";");
        w.line("  if (b != 0) {");
        w.line("    scaled = scaled / b;");
        w.line("  }");
        w.line("  return scaled;");
        w.line("}");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// FC templates
// ---------------------------------------------------------------------------

Emitted fc_strcpy_overflow(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  Emitted out;
  CodeWriter& w = out.writer;
  const int sz = 32 + static_cast<int>(rng.uniform(8)) * 16;
  std::string fn = names.fn("copy");
  std::string data = names.var("data");
  std::string dest = names.var("dest");

  w.line("void " + fn + "(char *" + data + ") {");
  w.line("  char " + dest + "[" + std::to_string(sz) + "];");
  emit_texture(w, rng, "  ");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", "(int)strlen(" + data + ")", "measured", spec.filler);
  } else {
    w.line("  int measured = (int)strlen(" + data + ");");
  }
  if (spec.vulnerable) {
    int v = w.line("  strcpy(" + dest + ", " + data + ");");
    out.vulnerable_lines.insert(v);
    w.line("  " + dest + "[0] = (char)measured;");
  } else {
    w.line("  if (measured < " + std::to_string(sz) + ") {");
    w.line("    strcpy(" + dest + ", " + data + ");");
    w.line("  }");
    w.line("  " + dest + "[0] = (char)measured;");
  }
  w.line("  printf(\"%s\", " + dest + ");");
  w.line("}");
  return out;
}

Emitted fc_ambiguous(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  // Fig. 1: identical data+control-dependence gadget, flaw position
  // differs only by branch. The bad variant copies when the length check
  // FAILED (else branch), so n can exceed the buffer.
  Emitted out;
  CodeWriter& w = out.writer;
  const int sz = 100;
  std::string fn = names.fn("recv");
  std::string data = names.var("data");
  std::string dest = names.var("dest");
  std::string n = names.var("len");

  w.line("void " + fn + "(char *" + data + ", int " + n + "_p) {");
  w.line("  char " + dest + "[" + std::to_string(sz) + "];");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", n + "_p", n, spec.filler);
  } else {
    w.line("  int " + n + " = " + n + "_p;");
  }
  emit_texture(w, rng, "  ");
  w.line("  if (" + n + " < " + std::to_string(sz) + ") {");
  if (spec.vulnerable) {
    w.line("    report(" + n + ");");
    w.line("  } else {");
    int v = w.line("    strncpy(" + dest + ", " + data + ", " + n + ");");
    out.vulnerable_lines.insert(v);
  } else {
    w.line("    strncpy(" + dest + ", " + data + ", " + n + ");");
    w.line("  } else {");
    w.line("    report(" + n + ");");
  }
  w.line("  }");
  w.line("  printf(\"%s\", " + dest + ");");
  w.line("}");
  return out;
}

Emitted fc_interproc(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  Emitted out;
  CodeWriter& w = out.writer;
  const int sz = 64;
  std::string sink = names.fn("sink");
  std::string driver = names.fn("driver");
  std::string data = names.var("data");
  std::string dest = names.var("dest");

  w.line("void " + sink + "(char *dst, char *src, int len) {");
  int v = w.line("  memcpy(dst, src, len);");
  if (spec.vulnerable) out.vulnerable_lines.insert(v);
  w.line("}");
  w.line("void " + driver + "(char *" + data + ") {");
  w.line("  char " + dest + "[" + std::to_string(sz) + "];");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", "(int)strlen(" + data + ")", "len", spec.filler);
  } else {
    w.line("  int len = (int)strlen(" + data + ");");
  }
  emit_texture(w, rng, "  ");
  if (!spec.vulnerable) {
    w.line("  if (len > " + std::to_string(sz) + ") {");
    w.line("    len = " + std::to_string(sz) + ";");
    w.line("  }");
  }
  w.line("  " + sink + "(" + dest + ", " + data + ", len);");
  w.line("}");
  return out;
}

Emitted fc_sprintf(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  Emitted out;
  CodeWriter& w = out.writer;
  const int sz = 24 + static_cast<int>(rng.uniform(4)) * 8;
  std::string fn = names.fn("format");
  std::string name = names.var("name");
  std::string line_buf = names.var("line");

  w.line("void " + fn + "(char *" + name + ") {");
  w.line("  char " + line_buf + "[" + std::to_string(sz) + "];");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", "(int)strlen(" + name + ")", "tag", spec.filler);
  } else {
    w.line("  int tag = (int)strlen(" + name + ");");
  }
  if (spec.vulnerable) {
    int v = w.line("  sprintf(" + line_buf + ", \"%s:%d\", " + name + ", tag);");
    out.vulnerable_lines.insert(v);
  } else {
    w.line("  snprintf(" + line_buf + ", sizeof(" + line_buf + "), \"%s:%d\", " +
           name + ", tag);");
  }
  w.line("  puts(" + line_buf + ");");
  w.line("}");
  return out;
}

Emitted fc_guard_bypass(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  // Early-return guard style: the check exists in BOTH variants; the bad
  // one is additively overflowable (off + count wraps past INT_MAX), the
  // good one uses the subtraction form. This is the CVE-2016-9104 shape
  // and teaches models that guard *text* matters, not guard presence.
  Emitted out;
  CodeWriter& w = out.writer;
  const int max = 128 + static_cast<int>(rng.uniform(4)) * 64;
  std::string fn = names.fn("xattr");
  std::string payload = names.var("payload");

  w.line("int " + fn + "(char *" + payload + ", int off_p, int count) {");
  w.line("  char region[" + std::to_string(max) + "];");
  w.line("  int max = " + std::to_string(max) + ";");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", "off_p", "off", spec.filler);
  } else {
    w.line("  int off = off_p;");
  }
  emit_texture(w, rng, "  ");
  if (spec.vulnerable) {
    w.line("  if (off + count > max) {");
    w.line("    return -1;");
    w.line("  }");
    int v = w.line("  memcpy(region + off, " + payload + ", count);");
    out.vulnerable_lines.insert(v);
  } else {
    w.line("  if (off < 0 || off > max || count > max - off) {");
    w.line("    return -1;");
    w.line("  }");
    w.line("  memcpy(region + off, " + payload + ", count);");
  }
  w.line("  return region[0];");
  w.line("}");
  return out;
}

// ---------------------------------------------------------------------------
// AU templates
// ---------------------------------------------------------------------------

Emitted au_index(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  Emitted out;
  CodeWriter& w = out.writer;
  const int sz = 16 + static_cast<int>(rng.uniform(6)) * 8;
  std::string fn = names.fn("lookup");
  std::string table = names.var("table");
  std::string idx = names.var("idx");

  w.line("int " + fn + "(int " + idx + "_p) {");
  w.line("  int " + table + "[" + std::to_string(sz) + "];");
  w.line("  for (int i = 0; i < " + std::to_string(sz) + "; i++) {");
  w.line("    " + table + "[i] = i * 2;");
  w.line("  }");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", idx + "_p", idx, spec.filler);
  } else {
    w.line("  int " + idx + " = " + idx + "_p;");
  }
  emit_texture(w, rng, "  ");
  if (spec.vulnerable) {
    int v = w.line("  int value = " + table + "[" + idx + "];");
    out.vulnerable_lines.insert(v);
    w.line("  return value;");
  } else {
    w.line("  if (" + idx + " >= 0 && " + idx + " < " + std::to_string(sz) + ") {");
    w.line("    int value = " + table + "[" + idx + "];");
    w.line("    return value;");
    w.line("  }");
    w.line("  return 0;");
  }
  w.line("}");
  return out;
}

Emitted au_loop(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  Emitted out;
  CodeWriter& w = out.writer;
  const int sz = 10 + static_cast<int>(rng.uniform(30));
  std::string fn = names.fn("fill");
  std::string buf = names.var("buf");

  w.line("void " + fn + "(int seed) {");
  w.line("  int " + buf + "[" + std::to_string(sz) + "];");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", "seed", "base", spec.filler);
  } else {
    w.line("  int base = seed;");
  }
  const char* cmp = spec.vulnerable ? " <= " : " < ";
  w.line("  for (int i = 0;i" + std::string(cmp) + std::to_string(sz) + "; i++) {");
  int v = w.line("    " + buf + "[i] = base + i;");
  if (spec.vulnerable) out.vulnerable_lines.insert(v);
  w.line("  }");
  w.line("  printf(\"%d\", " + buf + "[0]);");
  w.line("}");
  return out;
}

Emitted au_ambiguous(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  Emitted out;
  CodeWriter& w = out.writer;
  const int sz = 64;
  std::string fn = names.fn("store");
  std::string buf = names.var("slots");
  std::string idx = names.var("pos");

  w.line("void " + fn + "(int " + idx + "_p, int value) {");
  w.line("  int " + buf + "[" + std::to_string(sz) + "];");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", idx + "_p", idx, spec.filler);
  } else {
    w.line("  int " + idx + " = " + idx + "_p;");
  }
  w.line("  if (" + idx + " < " + std::to_string(sz) + ") {");
  if (spec.vulnerable) {
    w.line("    report(" + idx + ");");
    w.line("  } else {");
    int v = w.line("    " + buf + "[" + idx + "] = value;");
    out.vulnerable_lines.insert(v);
  } else {
    w.line("    " + buf + "[" + idx + "] = value;");
    w.line("  } else {");
    w.line("    report(" + idx + ");");
  }
  w.line("  }");
  w.line("  printf(\"%d\", " + buf + "[0]);");
  w.line("}");
  return out;
}

// ---------------------------------------------------------------------------
// PU templates
// ---------------------------------------------------------------------------

Emitted pu_null_deref(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  Emitted out;
  CodeWriter& w = out.writer;
  std::string fn = names.fn("alloc");
  std::string p = names.var("ptr");
  const int sz = 8 + static_cast<int>(rng.uniform(8)) * 4;

  w.line("void " + fn + "(int fill) {");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", "fill", "amount", spec.filler);
    w.line("  char *" + p + " = (char *)malloc(amount + " + std::to_string(sz) + ");");
  } else {
    w.line("  char *" + p + " = (char *)malloc(" + std::to_string(sz) + ");");
  }
  emit_texture(w, rng, "  ");
  if (spec.vulnerable) {
    int v = w.line("  *" + p + " = (char)fill;");
    out.vulnerable_lines.insert(v);
    w.line("  free(" + p + ");");
  } else {
    w.line("  if (" + p + " != NULL) {");
    w.line("    *" + p + " = (char)fill;");
    w.line("    free(" + p + ");");
    w.line("  }");
  }
  w.line("}");
  return out;
}

Emitted pu_use_after_free(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  Emitted out;
  CodeWriter& w = out.writer;
  std::string fn = names.fn("session");
  std::string p = names.var("ctx");

  w.line("void " + fn + "(int value) {");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", "value", "amount", spec.filler);
    w.line("  char *" + p + " = (char *)malloc(amount % 64 + 16);");
  } else {
    w.line("  char *" + p + " = (char *)malloc(16);");
  }
  w.line("  if (" + p + " == NULL) {");
  w.line("    return;");
  w.line("  }");
  emit_texture(w, rng, "  ");
  if (spec.vulnerable) {
    w.line("  free(" + p + ");");
    int v = w.line("  *" + p + " = (char)value;");
    out.vulnerable_lines.insert(v);
  } else {
    w.line("  *" + p + " = (char)value;");
    w.line("  free(" + p + ");");
  }
  w.line("}");
  return out;
}

Emitted pu_ambiguous(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  // Null-check polarity: deref is safe in the then branch, a flaw in the
  // else branch; the dependence-only gadget is identical either way.
  Emitted out;
  CodeWriter& w = out.writer;
  std::string fn = names.fn("update");
  std::string p = names.var("entry");

  w.line("void " + fn + "(int key, int value) {");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", "key", "slot", spec.filler);
    w.line("  char *" + p + " = (char *)lookup_entry(slot);");
  } else {
    w.line("  char *" + p + " = (char *)lookup_entry(key);");
  }
  w.line("  if (" + p + " != NULL) {");
  if (spec.vulnerable) {
    w.line("    log_hit(key);");
    w.line("  } else {");
    int v = w.line("    *" + p + " = (char)value;");
    out.vulnerable_lines.insert(v);
  } else {
    w.line("    *" + p + " = (char)value;");
    w.line("  } else {");
    w.line("    log_hit(key);");
  }
  w.line("  }");
  w.line("}");
  return out;
}

// ---------------------------------------------------------------------------
// AE templates
// ---------------------------------------------------------------------------

Emitted ae_overflow(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  Emitted out;
  CodeWriter& w = out.writer;
  std::string fn = names.fn("reserve");
  std::string count = names.var("count");
  const int elem = 4 + static_cast<int>(rng.uniform(4)) * 4;

  w.line("void " + fn + "(int " + count + "_p) {");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", count + "_p", count, spec.filler);
  } else {
    w.line("  int " + count + " = " + count + "_p;");
  }
  emit_texture(w, rng, "  ");
  if (spec.vulnerable) {
    int v = w.line("  int total = " + count + " * " + std::to_string(elem) + ";");
    out.vulnerable_lines.insert(v);
    w.line("  char *block = (char *)malloc(total);");
    w.line("  if (block != NULL) {");
    w.line("    block[0] = 0;");
    w.line("    free(block);");
    w.line("  }");
  } else {
    w.line("  if (" + count + " > 0 && " + count + " < 1024) {");
    w.line("    int total = " + count + " * " + std::to_string(elem) + ";");
    w.line("    char *block = (char *)malloc(total);");
    w.line("    if (block != NULL) {");
    w.line("      block[0] = 0;");
    w.line("      free(block);");
    w.line("    }");
    w.line("  }");
  }
  w.line("}");
  return out;
}

Emitted ae_div_zero(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  Emitted out;
  CodeWriter& w = out.writer;
  std::string fn = names.fn("average");
  std::string total = names.var("total");
  std::string count = names.var("count");

  w.line("int " + fn + "(int " + total + ", int " + count + "_p) {");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", count + "_p", count, spec.filler);
  } else {
    w.line("  int " + count + " = " + count + "_p;");
  }
  emit_texture(w, rng, "  ");
  if (spec.vulnerable) {
    int v = w.line("  int mean = " + total + " / " + count + ";");
    out.vulnerable_lines.insert(v);
    w.line("  int scaled = mean * 3;");
    w.line("  int shifted = scaled + 7;");
    w.line("  return shifted;");
  } else {
    w.line("  if (" + count + " != 0) {");
    w.line("    int mean = " + total + " / " + count + ";");
    w.line("    int scaled = mean * 3;");
    w.line("    int shifted = scaled + 7;");
    w.line("    return shifted;");
    w.line("  }");
    w.line("  return 0;");
  }
  w.line("}");
  return out;
}

Emitted ae_ambiguous(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  Emitted out;
  CodeWriter& w = out.writer;
  std::string fn = names.fn("ratio");
  std::string num = names.var("num");
  std::string den = names.var("den");

  w.line("int " + fn + "(int " + num + ", int " + den + "_p) {");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", den + "_p", den, spec.filler);
  } else {
    w.line("  int " + den + " = " + den + "_p;");
  }
  w.line("  int result = 0;");
  w.line("  if (" + den + " != 0) {");
  if (spec.vulnerable) {
    w.line("    report(" + den + ");");
    w.line("  } else {");
    int v = w.line("    result = " + num + " / " + den + ";");
    out.vulnerable_lines.insert(v);
  } else {
    w.line("    result = " + num + " / " + den + ";");
    w.line("  } else {");
    w.line("    report(" + den + ");");
  }
  w.line("  }");
  w.line("  int doubled = result * 2;");
  w.line("  return doubled;");
  w.line("}");
  return out;
}

Emitted ae_loop_hang(util::Rng& rng, const TemplateSpec& spec, Namer& names) {
  // CWE-835 infinite loop: the loop step comes from an unchecked input
  // and can be zero or negative, so `left` never decreases (the
  // CVE-2016-9776 mcf_fec shape). The patched variant clamps the step.
  Emitted out;
  CodeWriter& w = out.writer;
  std::string fn = names.fn("drain");
  std::string left = names.var("left");
  std::string step = names.var("step");

  w.line("void " + fn + "(int " + left + "_p, int " + step + "_p) {");
  if (spec.long_variant) {
    emit_chain(w, rng, "  ", step + "_p", step, spec.filler);
  } else {
    w.line("  int " + step + " = " + step + "_p;");
  }
  w.line("  int " + left + " = " + left + "_p;");
  emit_texture(w, rng, "  ");
  if (!spec.vulnerable) {
    w.line("  if (" + step + " < 1) {");
    w.line("    " + step + " = 1;");
    w.line("  }");
  }
  w.line("  while (" + left + " > 0) {");
  w.line("    report(" + left + ");");
  int v = w.line("    " + left + " = " + left + " - " + step + ";");
  if (spec.vulnerable) out.vulnerable_lines.insert(v);
  w.line("  }");
  w.line("  int residue = " + left + " * 2 + 1;");
  w.line("  report(residue);");
  w.line("}");
  return out;
}

// ---------------------------------------------------------------------------

using TemplateFn = Emitted (*)(util::Rng&, const TemplateSpec&, Namer&);

struct TemplateEntry {
  TemplateFn fn;
  const char* name;
  const char* cwe;
  bool ambiguous;
  bool interprocedural;
};

const std::vector<TemplateEntry>& templates_for(TokenCategory category) {
  static const std::vector<TemplateEntry> kFc = {
      {fc_strcpy_overflow, "strcpy", "CWE-121", false, false},
      {fc_ambiguous, "strncpy-path", "CWE-787", true, false},
      {fc_interproc, "memcpy-interproc", "CWE-121", false, true},
      {fc_sprintf, "sprintf", "CWE-787", false, false},
      {fc_guard_bypass, "guard-bypass", "CWE-190", false, false},
  };
  static const std::vector<TemplateEntry> kAu = {
      {au_index, "index", "CWE-125", false, false},
      {au_loop, "loop-bound", "CWE-787", false, false},
      {au_ambiguous, "index-path", "CWE-787", true, false},
  };
  static const std::vector<TemplateEntry> kPu = {
      {pu_null_deref, "null-deref", "CWE-476", false, false},
      {pu_use_after_free, "uaf", "CWE-416", false, false},
      {pu_ambiguous, "null-path", "CWE-476", true, false},
  };
  static const std::vector<TemplateEntry> kAe = {
      {ae_overflow, "int-overflow", "CWE-190", false, false},
      {ae_div_zero, "div-zero", "CWE-369", false, false},
      {ae_ambiguous, "div-path", "CWE-369", true, false},
      {ae_loop_hang, "loop-hang", "CWE-835", false, false},
  };
  switch (category) {
    case TokenCategory::FunctionCall: return kFc;
    case TokenCategory::ArrayUsage: return kAu;
    case TokenCategory::PointerUsage: return kPu;
    case TokenCategory::ArithExpr: return kAe;
  }
  return kFc;
}

const TemplateEntry& pick_template(TokenCategory category, bool want_ambiguous,
                                   bool want_interproc, util::Rng& rng) {
  const auto& pool = templates_for(category);
  std::vector<const TemplateEntry*> matching;
  for (const auto& entry : pool) {
    if (want_ambiguous && !entry.ambiguous) continue;
    if (!want_ambiguous && entry.ambiguous) continue;
    if (want_interproc && !entry.interprocedural) continue;
    matching.push_back(&entry);
  }
  if (matching.empty()) {
    for (const auto& entry : pool) {
      if (entry.ambiguous == want_ambiguous) matching.push_back(&entry);
    }
  }
  if (matching.empty()) matching.push_back(&pool[0]);
  return *matching[rng.uniform(matching.size())];
}

TestCase build_case(const TemplateEntry& entry, const TemplateSpec& spec,
                    util::Rng& rng, int serial) {
  Namer names(rng);
  Emitted emitted = entry.fn(rng, spec, names);
  // Helpers go AFTER the core function so the flagged line numbers the
  // template recorded stay valid.
  emit_benign_helpers(emitted.writer, rng,
                      3 + static_cast<int>(rng.uniform(3)));
  TestCase tc;
  tc.id = std::string(slicer::category_name(spec.category)) + "-" + entry.name +
          "-" + std::to_string(serial) + (spec.vulnerable ? "-bad" : "-good");
  tc.source = emitted.writer.source();
  tc.vulnerable_lines = std::move(emitted.vulnerable_lines);
  tc.vulnerable = spec.vulnerable;
  tc.category = spec.category;
  tc.cwe = entry.cwe;
  tc.ambiguous_pair = entry.ambiguous;
  tc.long_variant = spec.long_variant;
  return tc;
}

}  // namespace

TestCase generate_case(const TemplateSpec& spec) {
  util::Rng rng(spec.seed);
  const TemplateEntry& entry =
      pick_template(spec.category, spec.ambiguous, spec.interprocedural, rng);
  return build_case(entry, spec, rng, 0);
}

std::vector<TestCase> generate_sard_like(const SardConfig& config) {
  std::vector<TestCase> cases;
  util::Rng rng(config.seed);
  const TokenCategory categories[] = {
      TokenCategory::FunctionCall, TokenCategory::ArrayUsage,
      TokenCategory::PointerUsage, TokenCategory::ArithExpr};
  int serial = 0;
  for (TokenCategory category : categories) {
    for (int i = 0; i < config.pairs_per_category; ++i) {
      TemplateSpec spec;
      spec.category = category;
      spec.ambiguous = rng.bernoulli(config.ambiguous_fraction);
      spec.interprocedural =
          !spec.ambiguous && rng.bernoulli(config.interproc_fraction);
      spec.long_variant = rng.bernoulli(config.long_fraction);
      spec.filler = spec.long_variant
                        ? config.long_filler_statements +
                              static_cast<int>(rng.uniform(10))
                        : 0;
      const TemplateEntry& entry =
          pick_template(category, spec.ambiguous, spec.interprocedural, rng);
      // A good and a bad variant share every other knob (SARD "Mixed"
      // style): reseed a pair generator so both draw identical names.
      const std::uint64_t pair_seed = rng.next_u64();
      for (bool vulnerable : {false, true}) {
        spec.vulnerable = vulnerable;
        util::Rng pair_rng(pair_seed);
        cases.push_back(build_case(entry, spec, pair_rng, serial));
      }
      ++serial;
    }
  }
  return cases;
}

}  // namespace sevuldet::dataset
