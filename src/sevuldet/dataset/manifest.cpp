#include "sevuldet/dataset/manifest.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sevuldet/util/strings.hpp"

namespace sevuldet::dataset {

namespace fs = std::filesystem;

std::map<std::string, ManifestEntry> parse_manifest(const std::string& text) {
  std::map<std::string, ManifestEntry> out;
  int row = 0;
  for (const auto& raw : util::split_lines(text)) {
    ++row;
    std::string_view trimmed = util::trim(raw);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    // Split the RAW line: a leading tab means an empty file field, which
    // must be rejected rather than silently absorbed.
    auto fields = util::split(raw, '\t');
    if (fields.empty() || fields[0].empty()) {
      throw std::runtime_error("manifest row " + std::to_string(row) +
                               ": missing file path");
    }
    ManifestEntry& entry = out[fields[0]];
    if (fields.size() >= 2 && !fields[1].empty()) {
      try {
        int flagged = std::stoi(fields[1]);
        if (flagged < 1) throw std::invalid_argument("line < 1");
        entry.lines.insert(flagged);
      } catch (const std::exception&) {
        throw std::runtime_error("manifest row " + std::to_string(row) +
                                 ": bad line number '" + fields[1] + "'");
      }
    }
    if (fields.size() >= 3 && !fields[2].empty()) entry.cwe = fields[2];
  }
  return out;
}

std::string manifest_for(const std::vector<TestCase>& cases) {
  std::string out =
      "# file<TAB>line<TAB>cwe — one row per flagged line; clean files may\n"
      "# appear with no line to be listed explicitly.\n";
  for (const auto& tc : cases) {
    const std::string file = tc.id + ".c";
    if (tc.vulnerable_lines.empty()) {
      out += file + "\n";
      continue;
    }
    for (int line : tc.vulnerable_lines) {
      out += file + "\t" + std::to_string(line) + "\t" + tc.cwe + "\n";
    }
  }
  return out;
}

std::vector<TestCase> load_labeled_directory(const std::string& dir,
                                             const std::string& manifest_path) {
  std::map<std::string, ManifestEntry> manifest;
  if (!manifest_path.empty()) {
    std::ifstream in(manifest_path);
    if (!in) throw std::runtime_error("cannot read manifest " + manifest_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    manifest = parse_manifest(buf.str());
  }

  std::vector<TestCase> cases;
  const fs::path root(dir);
  if (!fs::is_directory(root)) {
    throw std::runtime_error("not a directory: " + dir);
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && entry.path().extension() == ".c") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());  // deterministic order
  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    TestCase tc;
    tc.id = fs::relative(path, root).generic_string();
    tc.source = buf.str();
    auto it = manifest.find(tc.id);
    if (it != manifest.end()) {
      tc.vulnerable_lines = it->second.lines;
      tc.vulnerable = !it->second.lines.empty();
      tc.cwe = it->second.cwe;
    }
    cases.push_back(std::move(tc));
  }
  return cases;
}

void export_corpus(const std::vector<TestCase>& cases, const std::string& dir) {
  const fs::path root(dir);
  fs::create_directories(root);
  for (const auto& tc : cases) {
    std::ofstream out(root / (tc.id + ".c"));
    if (!out) throw std::runtime_error("cannot write " + tc.id);
    out << tc.source;
  }
  std::ofstream manifest(root / "manifest.tsv");
  manifest << manifest_for(cases);
}

}  // namespace sevuldet::dataset
