// Projection of the program dependence graph onto one code gadget: the
// gadget's lines become nodes (token spans via the normalizer's
// per-token line provenance) and every PDG data/control/call edge whose
// endpoints both survive the slice becomes a typed GadgetEdge. The
// result rides inside GadgetSample through the binary corpus format
// (corpus_io v2) so training never re-parses source.
#pragma once

#include "sevuldet/graph/gadget_graph.hpp"
#include "sevuldet/graph/pdg.hpp"
#include "sevuldet/normalize/normalize.hpp"
#include "sevuldet/slicer/gadget.hpp"

namespace sevuldet::dataset {

/// Build the per-gadget graph. Token spans come from `norm.lines`
/// (1-based gadget-line index per token, 0 = unknown — unknown tokens
/// stay with the previous node). Edges are deduplicated, self-edges
/// dropped, and sorted by (to, from, type) per the GadgetGraph
/// invariants. Returns an empty graph when the gadget has no tokens.
graph::GadgetGraph build_gadget_graph(const graph::ProgramGraph& program,
                                      const slicer::CodeGadget& gadget,
                                      const normalize::NormalizedGadget& norm);

}  // namespace sevuldet::dataset
