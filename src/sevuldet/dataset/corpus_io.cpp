#include "sevuldet/dataset/corpus_io.hpp"

#include <stdexcept>

namespace sevuldet::dataset {

namespace {

constexpr std::string_view kCorpusMagic = "SVDCORP\n";

void write_stats(util::ByteWriter& out, const CorpusStats& stats) {
  out.u32(static_cast<std::uint32_t>(stats.by_category.size()));
  for (const auto& [category, counts] : stats.by_category) {
    out.u8(static_cast<std::uint8_t>(category));
    out.i64(counts.first);
    out.i64(counts.second);
  }
  out.i64(stats.parse_failures);
}

CorpusStats read_stats(util::ByteReader& in) {
  CorpusStats stats;
  const std::uint32_t categories = in.u32();
  for (std::uint32_t i = 0; i < categories; ++i) {
    const auto category = static_cast<slicer::TokenCategory>(in.u8());
    const long long vulnerable = in.i64();
    const long long total = in.i64();
    stats.by_category[category] = {vulnerable, total};
  }
  stats.parse_failures = in.i64();
  return stats;
}

/// Everything the fingerprint and the file share: samples, vocabulary,
/// stats — but not the transient cache-hit counters.
std::string corpus_payload(const Corpus& corpus) {
  util::ByteWriter out;
  out.u64(corpus.samples.size());
  for (const auto& sample : corpus.samples) write_sample(out, sample);
  out.str(corpus.vocab.serialize());
  write_stats(out, corpus.stats);
  return out.data();
}

}  // namespace

void write_sample(util::ByteWriter& out, const GadgetSample& sample) {
  out.u32(static_cast<std::uint32_t>(sample.tokens.size()));
  for (const auto& token : sample.tokens) out.str(token);
  out.u32(static_cast<std::uint32_t>(sample.ids.size()));
  for (int id : sample.ids) out.i32(id);
  out.i32(sample.label);
  out.str(sample.cwe);
  out.u8(static_cast<std::uint8_t>(sample.category));
  out.str(sample.case_id);
  out.u8(sample.from_ambiguous ? 1 : 0);
  out.u8(sample.from_long ? 1 : 0);
  // v2: the per-gadget dependence graph.
  out.u32(static_cast<std::uint32_t>(sample.graph.node_offsets.size()));
  for (std::uint32_t off : sample.graph.node_offsets) out.u32(off);
  out.u32(static_cast<std::uint32_t>(sample.graph.edges.size()));
  for (const auto& edge : sample.graph.edges) {
    out.u32(edge.from);
    out.u32(edge.to);
    out.u8(static_cast<std::uint8_t>(edge.type));
  }
}

GadgetSample read_sample(util::ByteReader& in) {
  GadgetSample sample;
  const std::uint32_t tokens = in.u32();
  sample.tokens.reserve(tokens);
  for (std::uint32_t i = 0; i < tokens; ++i) sample.tokens.push_back(in.str());
  const std::uint32_t ids = in.u32();
  sample.ids.reserve(ids);
  for (std::uint32_t i = 0; i < ids; ++i) sample.ids.push_back(in.i32());
  sample.label = in.i32();
  sample.cwe = in.str();
  sample.category = static_cast<slicer::TokenCategory>(in.u8());
  sample.case_id = in.str();
  sample.from_ambiguous = in.u8() != 0;
  sample.from_long = in.u8() != 0;
  const std::uint32_t offsets = in.u32();
  sample.graph.node_offsets.reserve(offsets);
  for (std::uint32_t i = 0; i < offsets; ++i) {
    sample.graph.node_offsets.push_back(in.u32());
  }
  const std::uint32_t edges = in.u32();
  sample.graph.edges.reserve(edges);
  for (std::uint32_t i = 0; i < edges; ++i) {
    graph::GadgetEdge edge;
    edge.from = in.u32();
    edge.to = in.u32();
    edge.type = static_cast<graph::GadgetEdgeType>(in.u8());
    sample.graph.edges.push_back(edge);
  }
  return sample;
}

std::string serialize_corpus(const Corpus& corpus) {
  return util::frame_payload(kCorpusMagic, kCorpusFormatVersion,
                             corpus_payload(corpus));
}

Corpus deserialize_corpus(std::string_view bytes) {
  const std::string payload =
      util::unframe_payload(kCorpusMagic, kCorpusFormatVersion, bytes, "corpus file");
  util::ByteReader in(payload);
  Corpus corpus;
  const std::uint64_t samples = in.u64();
  corpus.samples.reserve(static_cast<std::size_t>(samples));
  for (std::uint64_t i = 0; i < samples; ++i) {
    corpus.samples.push_back(read_sample(in));
  }
  corpus.vocab = normalize::Vocabulary::deserialize(in.str());
  corpus.stats = read_stats(in);
  if (!in.done()) {
    throw std::runtime_error("corpus file: trailing bytes in payload");
  }
  return corpus;
}

void save_corpus(const Corpus& corpus, const std::string& path) {
  util::write_binary_file(path, serialize_corpus(corpus));
}

Corpus load_corpus(const std::string& path) {
  return deserialize_corpus(util::read_binary_file(path));
}

std::uint64_t corpus_fingerprint(const Corpus& corpus) {
  return util::fnv1a(corpus_payload(corpus));
}

}  // namespace sevuldet::dataset
