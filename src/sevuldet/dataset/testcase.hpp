// A generated test case: one self-contained C program with ground-truth
// vulnerability annotations (the stand-in for a SARD test case + its
// manifest.xml entry, per the substitution table in DESIGN.md).
#pragma once

#include <set>
#include <string>

#include "sevuldet/slicer/special_tokens.hpp"

namespace sevuldet::dataset {

struct TestCase {
  std::string id;                  // e.g. "FC-strcpy-0042-bad"
  std::string source;              // complete C translation unit
  std::set<int> vulnerable_lines;  // 1-based lines of flaw sinks (empty if clean)
  bool vulnerable = false;
  slicer::TokenCategory category = slicer::TokenCategory::FunctionCall;
  std::string cwe;                 // e.g. "CWE-121"
  bool ambiguous_pair = false;     // Fig.1-style path-ambiguous pair member
  bool long_variant = false;       // gadget exceeds typical RNN time steps
};

/// Helper for emitting line-accurate sources: append lines, remember the
/// line numbers that matter.
class CodeWriter {
 public:
  /// Appends one source line, returns its 1-based line number.
  int line(const std::string& text) {
    source_ += text;
    source_ += '\n';
    return ++count_;
  }
  /// Blank separator line.
  void blank() { line(""); }

  const std::string& source() const { return source_; }
  int current_line() const { return count_; }

 private:
  std::string source_;
  int count_ = 0;
};

}  // namespace sevuldet::dataset
