#include "sevuldet/dataset/realworld.hpp"

#include <array>

namespace sevuldet::dataset {

namespace {

using slicer::TokenCategory;

/// Register-decode chain: device emulators massage guest values through
/// many masking/shifting steps before use; this is also what pushes the
/// 9776-like gadget past fixed RNN time steps.
void emit_decode_chain(CodeWriter& w, util::Rng& rng, const std::string& indent,
                       const std::string& src, const std::string& dst, int count) {
  static const std::array<const char*, 4> kOps = {"+", "^", "|", "-"};
  std::string prev = src;
  for (int i = 0; i < count; ++i) {
    std::string cur = dst + "_r" + std::to_string(i);
    w.line(indent + "int " + cur + " = " + prev + " " +
           kOps[rng.uniform(kOps.size())] + " " +
           std::to_string(rng.uniform(256)) + ";");
    prev = cur;
  }
  // Undo the obfuscation so runtime semantics still track the register:
  // the chain exists for dependence length, the final value is the raw
  // register (keeps the fuzzer ground truth exact).
  w.line(indent + "int " + dst + " = " + prev + " - (" + prev + " - " + src + ");");
}

// --- CVE-2016-9776-like: mcf_fec receive loop ------------------------------

TestCase make_fec_case(bool vulnerable, int preamble, std::uint64_t seed,
                       const std::string& id_suffix) {
  util::Rng rng(seed);
  CodeWriter w;
  TestCase tc;
  w.line("void fec_dma_write(int addr, int chunk) {");
  w.line("  report(addr);");
  w.line("}");
  w.line("void fec_receive(int buf_addr, int frame_size, int emrbr_reg) {");
  emit_decode_chain(w, rng, "  ", "emrbr_reg", "emrbr", preamble);
  if (!vulnerable) {
    w.line("  if (emrbr < 64) {");
    w.line("    emrbr = 64;");
    w.line("  }");
  }
  w.line("  int size = frame_size;");
  int loop_line = w.line("  while (size > 0) {");
  w.line("    int chunk = size;");
  w.line("    if (chunk > emrbr) {");
  w.line("      chunk = emrbr;");
  w.line("    }");
  w.line("    fec_dma_write(buf_addr, chunk);");
  w.line("    buf_addr = buf_addr + chunk;");
  int update_line = w.line("    size = size - chunk;");
  w.line("  }");
  w.line("}");
  w.line("int harness_main() {");
  w.line("  int emrbr_reg = input_int();");
  w.line("  int frame_size = input_int();");
  w.line("  if (frame_size < 0) {");
  w.line("    frame_size = 0 - frame_size;");
  w.line("  }");
  w.line("  frame_size = frame_size % 4096;");
  w.line("  if (frame_size == 0) {");
  w.line("    frame_size = 64;");
  w.line("  }");
  w.line("  fec_receive(0, frame_size, emrbr_reg);");
  w.line("  return 0;");
  w.line("}");

  tc.id = "rw-fec-" + id_suffix + (vulnerable ? "-bad" : "-good");
  tc.source = w.source();
  tc.vulnerable = vulnerable;
  if (vulnerable) {
    tc.vulnerable_lines.insert(loop_line);
    tc.vulnerable_lines.insert(update_line);
  }
  tc.category = TokenCategory::ArithExpr;
  tc.cwe = "CWE-835";
  tc.long_variant = preamble > 10;
  return tc;
}

// --- CVE-2016-9104-like: 9pfs xattr overflow-bypassed guard ----------------

TestCase make_xattr_case(bool vulnerable, std::uint64_t seed,
                         const std::string& id_suffix) {
  util::Rng rng(seed);
  CodeWriter w;
  TestCase tc;
  const int max = 256;
  const int magic = 38591047 + static_cast<int>(rng.uniform(3)) * 1009;
  w.line("int v9fs_xattr_read(char *payload, int off, int count) {");
  w.line("  char region[" + std::to_string(max) + "];");
  w.line("  int max = " + std::to_string(max) + ";");
  int vuln_line;
  if (vulnerable) {
    w.line("  if (off + count > max) {");
    w.line("    return -1;");
    w.line("  }");
    vuln_line = w.line("  memcpy(region + off, payload, count);");
    tc.vulnerable_lines.insert(vuln_line);
  } else {
    w.line("  if (off < 0 || off > max || count > max - off) {");
    w.line("    return -1;");
    w.line("  }");
    w.line("  memcpy(region + off, payload, count);");
  }
  w.line("  return region[0];");
  w.line("}");
  w.line("int harness_main() {");
  w.line("  char payload[64];");
  w.line("  int tag = input_int();");
  w.line("  if (tag != " + std::to_string(magic) + ") {");
  w.line("    return 0;");
  w.line("  }");
  w.line("  int off = input_int();");
  w.line("  int count = input_int();");
  w.line("  count = count % 64;");
  w.line("  if (count < 1) {");
  w.line("    count = 1;");
  w.line("  }");
  w.line("  int r = v9fs_xattr_read(payload, off, count);");
  w.line("  return r;");
  w.line("}");

  tc.id = "rw-xattr-" + id_suffix + (vulnerable ? "-bad" : "-good");
  tc.source = w.source();
  tc.vulnerable = vulnerable;
  tc.category = TokenCategory::FunctionCall;
  tc.cwe = "CWE-190";
  return tc;
}

// --- CVE-2016-4453-like: vmware_vga unbounded FIFO loop --------------------

TestCase make_vga_case(bool vulnerable, std::uint64_t seed,
                       const std::string& id_suffix) {
  util::Rng rng(seed);
  CodeWriter w;
  TestCase tc;
  const int clamp = 512 + static_cast<int>(rng.uniform(4)) * 256;
  w.line("void vga_fifo_run(int cursor_count) {");
  w.line("  int processed = 0;");
  if (!vulnerable) {
    w.line("  if (cursor_count > " + std::to_string(clamp) + ") {");
    w.line("    cursor_count = " + std::to_string(clamp) + ";");
    w.line("  }");
  }
  int loop_line = w.line("  while (processed < cursor_count) {");
  w.line("    report(processed);");
  int step_line = w.line("    processed = processed + 1;");
  w.line("  }");
  w.line("}");
  w.line("int harness_main() {");
  w.line("  int count = input_int();");
  w.line("  vga_fifo_run(count);");
  w.line("  return 0;");
  w.line("}");

  tc.id = "rw-vga-" + id_suffix + (vulnerable ? "-bad" : "-good");
  tc.source = w.source();
  tc.vulnerable = vulnerable;
  if (vulnerable) {
    tc.vulnerable_lines.insert(loop_line);
    tc.vulnerable_lines.insert(step_line);
  }
  tc.category = TokenCategory::ArithExpr;
  tc.cwe = "CWE-835";
  return tc;
}

// --- clean device handlers -------------------------------------------------

TestCase make_clean_device(util::Rng& rng, int serial) {
  CodeWriter w;
  TestCase tc;
  const std::string suffix = std::to_string(serial);
  switch (rng.uniform(4)) {
    case 0: {  // masked register write
      w.line("int reg_write" + suffix + "(int reg, int value) {");
      w.line("  int masked = value & 65535;");
      w.line("  if (reg < 0 || reg > 63) {");
      w.line("    return -1;");
      w.line("  }");
      w.line("  int bank[64];");
      w.line("  bank[reg] = masked;");
      w.line("  return bank[reg];");
      w.line("}");
      break;
    }
    case 1: {  // bounded checksum loop
      const int sz = 32 + static_cast<int>(rng.uniform(4)) * 32;
      w.line("int checksum" + suffix + "(char *frame, int len) {");
      w.line("  int acc = 0;");
      w.line("  if (len > " + std::to_string(sz) + ") {");
      w.line("    len = " + std::to_string(sz) + ";");
      w.line("  }");
      w.line("  for (int i = 0; i < len; i++) {");
      w.line("    acc = acc + frame[i];");
      w.line("  }");
      w.line("  return acc & 255;");
      w.line("}");
      break;
    }
    case 2: {  // clamped DMA copy
      const int sz = 64 + static_cast<int>(rng.uniform(4)) * 64;
      w.line("void dma_copy" + suffix + "(char *guest, int len) {");
      w.line("  char staging[" + std::to_string(sz) + "];");
      w.line("  if (len < 0 || len > " + std::to_string(sz) + ") {");
      w.line("    return;");
      w.line("  }");
      w.line("  memcpy(staging, guest, len);");
      w.line("  report(staging[0]);");
      w.line("}");
      break;
    }
    default: {  // command dispatch
      w.line("int dispatch" + suffix + "(int cmd, int arg) {");
      w.line("  int status = 0;");
      w.line("  switch (cmd) {");
      w.line("    case 1:");
      w.line("      status = arg & 255;");
      w.line("      break;");
      w.line("    case 2:");
      w.line("      if (arg != 0) {");
      w.line("        status = 4096 / arg;");
      w.line("      }");
      w.line("      break;");
      w.line("    default:");
      w.line("      status = -1;");
      w.line("  }");
      w.line("  return status;");
      w.line("}");
      break;
    }
  }
  tc.id = "rw-clean-" + suffix;
  tc.source = w.source();
  tc.vulnerable = false;
  tc.category = TokenCategory::FunctionCall;
  tc.cwe = "";
  return tc;
}

}  // namespace

RealWorldCorpus generate_realworld(const RealWorldConfig& config) {
  RealWorldCorpus corpus;
  util::Rng rng(config.seed);

  // The three flagship planted bugs (Table VII / Fig. 6).
  {
    PlantedBug fec;
    fec.name = "infinite-loop in FEC receive";
    fec.cve = "CVE-2016-9776";
    fec.file = "*/net/mcf_fec.c";
    fec.testcase = make_fec_case(true, config.preamble_chain, rng.next_u64(), "planted");
    fec.category = TokenCategory::ArithExpr;
    corpus.planted.push_back(fec);

    PlantedBug xattr;
    xattr.name = "OOB write via overflowed bounds check";
    xattr.cve = "CVE-2016-9104";
    xattr.file = "*/9pfs/virtio-9p.c";
    xattr.testcase = make_xattr_case(true, rng.next_u64(), "planted");
    xattr.category = TokenCategory::FunctionCall;
    corpus.planted.push_back(xattr);

    PlantedBug vga;
    vga.name = "unbounded FIFO cursor loop";
    vga.cve = "CVE-2016-4453";
    vga.file = "*/display/vmware_vga.c";
    vga.testcase = make_vga_case(true, rng.next_u64(), "planted");
    vga.category = TokenCategory::ArithExpr;
    corpus.planted.push_back(vga);
  }

  // Labeled corpus for Table VI: the planted programs, variant pairs of
  // each shape, and clean device handlers.
  for (const auto& bug : corpus.planted) corpus.cases.push_back(bug.testcase);
  for (int i = 0; i < config.variant_pairs; ++i) {
    const std::string suffix = std::to_string(i);
    for (bool bad : {false, true}) {
      corpus.cases.push_back(
          make_fec_case(bad, config.preamble_chain / 2 + static_cast<int>(rng.uniform(10)),
                        rng.next_u64(), suffix));
      corpus.cases.push_back(make_xattr_case(bad, rng.next_u64(), suffix));
      corpus.cases.push_back(make_vga_case(bad, rng.next_u64(), suffix));
    }
  }
  for (int i = 0; i < config.clean_functions; ++i) {
    corpus.cases.push_back(make_clean_device(rng, i));
  }
  return corpus;
}

}  // namespace sevuldet::dataset
