#include "sevuldet/dataset/kfold.hpp"

#include <stdexcept>

namespace sevuldet::dataset {

std::vector<FoldSplit> k_fold_splits(std::size_t n, int k, std::uint64_t seed) {
  if (k < 2) throw std::invalid_argument("k_fold_splits: k must be >= 2");
  util::Rng rng(seed);
  std::vector<std::size_t> order = rng.permutation(n);

  std::vector<FoldSplit> splits(static_cast<std::size_t>(k));
  for (int fold = 0; fold < k; ++fold) {
    const std::size_t begin = n * static_cast<std::size_t>(fold) / static_cast<std::size_t>(k);
    const std::size_t end = n * (static_cast<std::size_t>(fold) + 1) / static_cast<std::size_t>(k);
    auto& split = splits[static_cast<std::size_t>(fold)];
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= begin && i < end) {
        split.test.push_back(order[i]);
      } else {
        split.train.push_back(order[i]);
      }
    }
  }
  return splits;
}

}  // namespace sevuldet::dataset
