#include "sevuldet/dataset/gadget_graph.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace sevuldet::dataset {

namespace gr = sevuldet::graph;

gr::GadgetGraph build_gadget_graph(const gr::ProgramGraph& program,
                                   const slicer::CodeGadget& gadget,
                                   const normalize::NormalizedGadget& norm) {
  gr::GadgetGraph out;
  const int tokens = static_cast<int>(norm.tokens.size());
  const int n = static_cast<int>(gadget.lines.size());
  if (tokens == 0 || n == 0) return out;

  // Token -> node. norm.lines is 1-based into gadget.lines with 0 for
  // tokens without provenance; gadget tokens are emitted line by line,
  // so clamping to a nondecreasing walk keeps every span contiguous.
  std::vector<int> node_of(static_cast<std::size_t>(tokens), 0);
  int cur = 0;
  for (int t = 0; t < tokens; ++t) {
    const int ln = t < static_cast<int>(norm.lines.size())
                       ? norm.lines[static_cast<std::size_t>(t)]
                       : 0;
    if (ln >= 1 && ln <= n && ln - 1 > cur) cur = ln - 1;
    node_of[static_cast<std::size_t>(t)] = cur;
  }
  out.node_offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int t = 0; t < tokens; ++t) {
    ++out.node_offsets[static_cast<std::size_t>(node_of[t]) + 1];
  }
  for (int i = 0; i < n; ++i) {
    out.node_offsets[static_cast<std::size_t>(i) + 1] +=
        out.node_offsets[static_cast<std::size_t>(i)];
  }

  // (function, PDG unit) -> gadget node, first gadget line wins (a
  // boundary line and a statement line can share a source line).
  std::map<std::pair<std::string, int>, int> unit_node;
  std::map<std::string, int> fn_entry;  // first gadget node per function
  for (int gi = 0; gi < n; ++gi) {
    const auto& line = gadget.lines[static_cast<std::size_t>(gi)];
    if (fn_entry.find(line.function) == fn_entry.end()) {
      fn_entry.emplace(line.function, gi);
    }
    const gr::FunctionPdg* pdg = program.pdg_of(line.function);
    if (pdg == nullptr) continue;
    const int unit = pdg->unit_at_line(line.line);
    if (unit < 0) continue;
    unit_node.emplace(std::make_pair(line.function, unit), gi);
  }

  auto project = [&](const std::string& fn, int from_unit, int to_unit,
                     gr::GadgetEdgeType type) {
    const auto from_it = unit_node.find({fn, from_unit});
    const auto to_it = unit_node.find({fn, to_unit});
    if (from_it == unit_node.end() || to_it == unit_node.end()) return;
    if (from_it->second == to_it->second) return;  // model adds self-loops
    out.edges.push_back({static_cast<std::uint32_t>(from_it->second),
                         static_cast<std::uint32_t>(to_it->second), type});
  };

  for (const auto& [fn, entry] : fn_entry) {
    const gr::FunctionPdg* pdg = program.pdg_of(fn);
    if (pdg == nullptr) continue;
    for (const auto& dep : pdg->data.edges) {
      project(fn, dep.from, dep.to, gr::GadgetEdgeType::kData);
    }
    for (std::size_t u = 0; u < pdg->control.deps.size(); ++u) {
      for (int c : pdg->control.deps[u]) {
        project(fn, c, static_cast<int>(u), gr::GadgetEdgeType::kControl);
      }
    }
  }

  // Call edges: call-site node -> callee's first gadget node, for the
  // inter-procedural gadgets the slicer stitches across functions.
  for (const auto& call : program.calls) {
    const auto callee_it = fn_entry.find(call.callee);
    if (callee_it == fn_entry.end()) continue;
    const auto site_it = unit_node.find({call.caller, call.caller_unit});
    if (site_it == unit_node.end()) continue;
    if (site_it->second == callee_it->second) continue;
    out.edges.push_back({static_cast<std::uint32_t>(site_it->second),
                         static_cast<std::uint32_t>(callee_it->second),
                         gr::GadgetEdgeType::kCall});
  }

  // Sort by (to, from, type) and dedup — the GAT groups by destination,
  // and every neighborhood must accumulate in one deterministic order.
  std::sort(out.edges.begin(), out.edges.end(),
            [](const gr::GadgetEdge& a, const gr::GadgetEdge& b) {
              if (a.to != b.to) return a.to < b.to;
              if (a.from != b.from) return a.from < b.from;
              return static_cast<int>(a.type) < static_cast<int>(b.type);
            });
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end()),
                  out.edges.end());
  return out;
}

}  // namespace sevuldet::dataset
