// Deterministic k-fold cross-validation splits (the paper uses five-fold
// throughout, and k-fold relabeling in Step II).
#pragma once

#include <cstdint>
#include <vector>

#include "sevuldet/util/rng.hpp"

namespace sevuldet::dataset {

struct FoldSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Shuffle [0, n) with `seed` and cut into k near-equal folds; fold i's
/// split uses fold i as test and the rest as train.
std::vector<FoldSplit> k_fold_splits(std::size_t n, int k, std::uint64_t seed);

}  // namespace sevuldet::dataset
