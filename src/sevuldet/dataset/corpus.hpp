// Corpus construction: run the full preprocessing pipeline (Steps I-III
// of the paper) over generated test cases — PDG, special tokens, slices,
// (path-sensitive) gadgets, Step II labeling from the ground-truth
// manifest, Step III normalization — and produce encoded samples ready
// for embedding and training.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sevuldet/dataset/testcase.hpp"
#include "sevuldet/graph/gadget_graph.hpp"
#include "sevuldet/normalize/vocab.hpp"
#include "sevuldet/slicer/gadget.hpp"

namespace sevuldet::dataset {

struct GadgetSample {
  std::vector<std::string> tokens;  // normalized token stream
  std::vector<int> ids;             // vocabulary-encoded (filled by encode_corpus)
  int label = 0;                    // Step II: 1 iff a flagged line is in the gadget
  std::string cwe;                  // CWE id of the covered flaw ("" if clean)
  slicer::TokenCategory category = slicer::TokenCategory::FunctionCall;
  std::string case_id;
  bool from_ambiguous = false;
  bool from_long = false;
  /// PDG projected onto this gadget (corpus format v2): node token
  /// spans + typed control/data/call edges. The GAT backbone consumes
  /// it; the CNN path ignores it entirely.
  graph::GadgetGraph graph;
};

struct CorpusOptions {
  slicer::GadgetOptions gadget;     // path_sensitive + slice options
  bool deduplicate = false;         // drop exact (tokens, label) duplicates
  int min_token_count = 1;          // vocabulary frequency floor
  /// Worker threads for build_corpus. 1 = serial (the default), 0 = all
  /// hardware threads. Parallel output is byte-identical to serial:
  /// per-case work runs concurrently, the merge is ordered.
  int threads = 1;
  /// Content-addressed preprocessing cache directory ("" = disabled).
  /// Cache hits skip Steps I-III for unchanged cases; the result is
  /// byte-identical to an uncached build (see dataset/cache.hpp for the
  /// key and invalidation rules). Created on first use.
  std::string cache_dir;
};

struct CorpusStats {
  // [category] -> {vulnerable, total}
  std::map<slicer::TokenCategory, std::pair<long long, long long>> by_category;
  long long parse_failures = 0;
  /// Transient build counters (cache_dir only): how many cases were
  /// served from the cache vs recomputed. NOT corpus content — excluded
  /// from corpus_fingerprint() and serialize_corpus(), and always 0
  /// after load_corpus(). These are a per-build snapshot view; the
  /// process-wide totals accumulate on the metrics registry as
  /// "corpus.cache_hits"/"corpus.cache_misses" (util/metrics.hpp).
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long vulnerable() const;
  long long total() const;
};

struct Corpus {
  std::vector<GadgetSample> samples;
  normalize::Vocabulary vocab;
  CorpusStats stats;
};

/// Full pipeline. Programs that fail to parse are counted and skipped
/// (real pipelines do the same with Joern failures).
Corpus build_corpus(const std::vector<TestCase>& cases,
                    const CorpusOptions& options = {});

/// Injective dedup key for a token stream: '\0'-separated, so distinct
/// streams can never alias (a ' '-joined key would collide for e.g.
/// {"a b", "c"} vs {"a", "b c"} once multi-word constants appear).
std::string dedup_key(const std::vector<std::string>& tokens);

/// Build the vocabulary from a subset of samples (the training fold) and
/// encode every sample with it.
void encode_corpus(Corpus& corpus, const std::vector<std::size_t>& vocab_from,
                   int min_token_count = 1);
/// Convenience: vocabulary from all samples.
void encode_corpus(Corpus& corpus, int min_token_count = 1);

/// Sentences for word2vec pre-training (token streams of the given
/// sample indices).
std::vector<std::vector<int>> corpus_sentences(const Corpus& corpus,
                                               const std::vector<std::size_t>& idx);

}  // namespace sevuldet::dataset
