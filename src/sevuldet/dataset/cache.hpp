// Per-testcase content-addressed preprocessing cache. build_corpus's
// per-case work (parse -> PDG -> special tokens -> slices -> gadgets ->
// normalize, Steps I-III) is a pure function of the test case's content
// and the GadgetOptions, so its output can be memoized on disk: the key
// is a 128-bit FNV-1a hash over the source bytes, the case's label
// manifest (id, CWE, flagged lines, category, variant flags), every
// GadgetOptions field, and kCaseCacheFormatVersion. A warm build loads
// cached outputs and skips Steps I-III entirely; only changed cases
// recompute. The ordered merge in build_corpus is untouched, so a warm
// parallel build stays byte-identical to a cold serial build.
//
// Invalidation rules (each produces a fresh key, leaving stale entries
// to age out on disk):
//  - any change to the case's source bytes or label manifest;
//  - any change to any GadgetOptions field (slicing depth, control
//    dependence, interprocedurality, path sensitivity);
//  - bumping kCaseCacheFormatVersion — required whenever the frontend,
//    graph, slicer, or normalizer changes behavior, since their output
//    is what the cache stores.
// Entries that fail to load (truncated, corrupt, wrong version) are
// treated as misses and rewritten; the cache is self-healing and safe to
// delete wholesale at any time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sevuldet/dataset/corpus.hpp"
#include "sevuldet/dataset/testcase.hpp"

namespace sevuldet::dataset {

/// Version of the cached per-case payload AND of the preprocessing
/// algorithms that produce it. Part of every cache key.
/// v2: samples carry the projected GadgetGraph (corpus format v2).
inline constexpr std::uint32_t kCaseCacheFormatVersion = 2;

/// What build_corpus computes for one test case before the ordered
/// merge: the case's gadget samples (pre-dedup, pre-encode) or the fact
/// that it failed to parse.
struct CachedCase {
  std::vector<GadgetSample> samples;
  bool parse_failed = false;
};

/// Content-addressed key (32 hex chars). `version` is overridable so
/// tests can prove a version bump re-keys; production callers use the
/// default.
std::string case_cache_key(const TestCase& tc,
                           const slicer::GadgetOptions& options,
                           std::uint32_t version = kCaseCacheFormatVersion);

/// One directory of "<key>.svdcase" files. Writes go through a unique
/// temp file + rename, so concurrent builders (threads or processes)
/// sharing a cache directory never observe half-written entries.
class CorpusCache {
 public:
  /// Creates `dir` (and parents) if missing; throws std::runtime_error
  /// when the path exists but is not a directory.
  explicit CorpusCache(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string entry_path(const std::string& key) const;

  /// nullopt on absent or unreadable/corrupt/mismatched entries (a miss).
  std::optional<CachedCase> load(const std::string& key) const;
  void store(const std::string& key, const CachedCase& value) const;

 private:
  std::string dir_;
};

}  // namespace sevuldet::dataset
