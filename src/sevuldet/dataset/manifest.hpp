// Loading labeled programs from disk — the equivalent of SARD's
// manifest.xml / NVD's diff files for user-supplied corpora. The manifest
// is a TSV: one "relative/path.c<TAB>line[<TAB>CWE-id]" row per flagged
// line; files listed with no flagged lines (or not listed at all) are
// treated as clean.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sevuldet/dataset/testcase.hpp"

namespace sevuldet::dataset {

struct ManifestEntry {
  std::set<int> lines;
  std::string cwe;  // last CWE seen for the file ("" if none given)
};

/// Parse manifest text. Malformed rows throw std::runtime_error with the
/// row number.
std::map<std::string, ManifestEntry> parse_manifest(const std::string& text);

/// Serialize test cases' ground truth back to manifest text (round-trip
/// with parse_manifest; used to export generated corpora to disk).
std::string manifest_for(const std::vector<TestCase>& cases);

/// Scan `dir` recursively for .c files, apply the manifest at
/// `manifest_path` (may be empty => everything clean), and return test
/// cases whose ids are the paths relative to `dir`.
std::vector<TestCase> load_labeled_directory(const std::string& dir,
                                             const std::string& manifest_path);

/// Write a generated corpus to `dir` (one .c file per case) plus a
/// "manifest.tsv" — lets external tools consume our synthetic corpora.
void export_corpus(const std::vector<TestCase>& cases, const std::string& dir);

}  // namespace sevuldet::dataset
