#include "sevuldet/dataset/cache.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <stdexcept>

#include "sevuldet/dataset/corpus_io.hpp"
#include "sevuldet/util/binary_io.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/trace.hpp"

namespace fs = std::filesystem;

namespace sevuldet::dataset {

namespace {

constexpr std::string_view kCaseMagic = "SVDCASE\n";

/// Tagged, length-delimited field hashing: every field contributes its
/// tag, its length (for variable-size data), and its bytes, so no two
/// distinct field sequences can produce the same hash input.
void hash_field(util::Fnv1a& h, std::string_view tag, std::string_view bytes) {
  h.update(tag);
  h.update_value<std::uint64_t>(bytes.size());
  h.update(bytes);
}

template <typename T>
void hash_value(util::Fnv1a& h, std::string_view tag, T value) {
  h.update(tag);
  h.update_value(value);
}

void hash_key_material(util::Fnv1a& h, const TestCase& tc,
                       const slicer::GadgetOptions& options,
                       std::uint32_t version) {
  hash_field(h, "sevuldet-case-cache", "");
  hash_value(h, "version", version);
  // Source bytes — the dominant input.
  hash_field(h, "source", tc.source);
  // Label manifest: everything Step II copies into samples.
  hash_field(h, "id", tc.id);
  hash_field(h, "cwe", tc.cwe);
  hash_value(h, "vulnerable", static_cast<std::uint8_t>(tc.vulnerable));
  hash_value(h, "category", static_cast<std::uint8_t>(tc.category));
  hash_value(h, "ambiguous", static_cast<std::uint8_t>(tc.ambiguous_pair));
  hash_value(h, "long", static_cast<std::uint8_t>(tc.long_variant));
  hash_value(h, "lines", static_cast<std::uint64_t>(tc.vulnerable_lines.size()));
  for (int line : tc.vulnerable_lines) {
    hash_value(h, "line", static_cast<std::int64_t>(line));
  }
  // Every GadgetOptions field; add a tagged line here for every field
  // added to GadgetOptions/SliceOptions, or cached entries go stale
  // silently.
  hash_value(h, "path_sensitive",
             static_cast<std::uint8_t>(options.path_sensitive));
  hash_value(h, "use_control_dep",
             static_cast<std::uint8_t>(options.slice.use_control_dep));
  hash_value(h, "interprocedural",
             static_cast<std::uint8_t>(options.slice.interprocedural));
  hash_value(h, "max_call_depth",
             static_cast<std::int64_t>(options.slice.max_call_depth));
}

}  // namespace

std::string case_cache_key(const TestCase& tc,
                           const slicer::GadgetOptions& options,
                           std::uint32_t version) {
  // Two independent 64-bit streams -> 128-bit key; at corpus scale a
  // single 64-bit hash would make birthday collisions conceivable.
  util::Fnv1a lo;
  util::Fnv1a hi(0x9e3779b97f4a7c15ull);
  hash_key_material(lo, tc, options, version);
  hash_key_material(hi, tc, options, version);
  return util::hex64(lo.digest()) + util::hex64(hi.digest());
}

CorpusCache::CorpusCache(std::string dir) : dir_(std::move(dir)) {
  const fs::path path(dir_);
  std::error_code ec;
  fs::create_directories(path, ec);
  if (!fs::is_directory(path)) {
    throw std::runtime_error("corpus cache: not a directory: " + dir_);
  }
}

std::string CorpusCache::entry_path(const std::string& key) const {
  return (fs::path(dir_) / (key + ".svdcase")).string();
}

std::optional<CachedCase> CorpusCache::load(const std::string& key) const {
  util::trace::ScopedSpan span("cache.load");
  std::string bytes;
  try {
    bytes = util::read_binary_file(entry_path(key));
  } catch (const std::runtime_error&) {
    return std::nullopt;  // absent — the common miss
  }
  try {
    const std::string payload = util::unframe_payload(
        kCaseMagic, kCaseCacheFormatVersion, bytes, "cache entry");
    util::ByteReader in(payload);
    CachedCase value;
    value.parse_failed = in.u8() != 0;
    const std::uint32_t samples = in.u32();
    value.samples.reserve(samples);
    for (std::uint32_t i = 0; i < samples; ++i) {
      value.samples.push_back(read_sample(in));
    }
    if (!in.done()) {
      throw std::runtime_error("cache entry: trailing bytes");
    }
    return value;
  } catch (const std::runtime_error&) {
    util::metrics::counter_add("cache.corrupt_entries");
    return std::nullopt;  // truncated/corrupt/old version => recompute
  }
}

void CorpusCache::store(const std::string& key, const CachedCase& value) const {
  util::trace::ScopedSpan span("cache.store");
  util::ByteWriter payload;
  payload.u8(value.parse_failed ? 1 : 0);
  payload.u32(static_cast<std::uint32_t>(value.samples.size()));
  for (const auto& sample : value.samples) write_sample(payload, sample);

  // Unique temp name per write, then an atomic rename: concurrent
  // writers of the same key both succeed, last rename wins, and readers
  // only ever see complete entries.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp =
      entry_path(key) + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  util::write_binary_file(
      tmp, util::frame_payload(kCaseMagic, kCaseCacheFormatVersion,
                               payload.data()));
  std::error_code ec;
  fs::rename(tmp, entry_path(key), ec);
  if (ec) fs::remove(tmp, ec);  // cache store is best-effort; never fail a build
}

}  // namespace sevuldet::dataset
