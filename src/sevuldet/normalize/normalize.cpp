#include "sevuldet/normalize/normalize.hpp"

#include <unordered_set>

#include "sevuldet/frontend/lexer.hpp"
#include "sevuldet/slicer/special_tokens.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/strings.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::normalize {

namespace {

/// Identifiers that are not renamed even though they are not keywords:
/// common typedef names and well-known macros.
bool is_preserved_identifier(std::string_view name) {
  static const std::unordered_set<std::string_view> kPreserved = {
      "size_t", "ssize_t", "ptrdiff_t", "wchar_t",  "FILE",     "NULL",
      "int8_t", "int16_t", "int32_t",   "int64_t",  "uint8_t",  "uint16_t",
      "uint32_t","uint64_t","uintptr_t","intptr_t", "EOF",      "stdin",
      "stdout", "stderr",  "INT_MAX",   "INT_MIN",  "UINT_MAX", "SIZE_MAX",
      "CHAR_BIT","true",   "false",     "errno",    "hwaddr",
  };
  return kPreserved.contains(name);
}

}  // namespace

std::string NormalizedGadget::text() const {
  return util::join(tokens, " ");
}

std::map<std::string, std::string> NormalizedGadget::placeholder_to_original()
    const {
  std::map<std::string, std::string> inverse;
  for (const auto& [original, placeholder] : var_map) {
    inverse.emplace(placeholder, original);
  }
  for (const auto& [original, placeholder] : fun_map) {
    inverse.emplace(placeholder, original);
  }
  return inverse;
}

std::string NormalizedGadget::original_token(const std::string& token) const {
  for (const auto& [original, placeholder] : var_map) {
    if (placeholder == token) return original;
  }
  for (const auto& [original, placeholder] : fun_map) {
    if (placeholder == token) return original;
  }
  return token;
}

std::vector<std::string> tokenize_text(const std::string& text) {
  std::vector<std::string> out;
  std::string ascii = util::strip_non_ascii(text);
  for (const auto& tok : frontend::lex_tokens(ascii)) {
    out.emplace_back(tok.text);
  }
  return out;
}

NormalizedGadget normalize_text(const std::string& gadget_text) {
  NormalizedGadget out;
  std::string ascii = util::strip_non_ascii(gadget_text);

  frontend::TokenStream tokens;
  try {
    tokens = frontend::lex_tokens(ascii);
  } catch (const frontend::LexError&) {
    // Malformed fragment (e.g. sliced mid-string) — degrade to
    // whitespace tokens rather than fail the whole pipeline, keeping the
    // per-line provenance by splitting line by line.
    util::metrics::counter_add("normalize.drop.lex_fallback");
    int line = 1;
    std::size_t begin = 0;
    while (begin <= ascii.size()) {
      std::size_t end = ascii.find('\n', begin);
      if (end == std::string::npos) end = ascii.size();
      for (const auto& word :
           util::split_ws(std::string_view(ascii).substr(begin, end - begin))) {
        out.tokens.push_back(word);
        out.lines.push_back(line);
      }
      begin = end + 1;
      ++line;
    }
    return out;
  }

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const frontend::Token& tok = tokens[i];
    if (tok.kind != frontend::TokenKind::Identifier) {
      out.tokens.emplace_back(tok.text);
      out.lines.push_back(tok.line);
      continue;
    }
    if (is_preserved_identifier(tok.text) ||
        slicer::is_library_function(tok.text)) {
      out.tokens.emplace_back(tok.text);
      out.lines.push_back(tok.line);
      continue;
    }
    const bool is_call = i + 1 < tokens.size() && tokens[i + 1].is_punct("(");
    if (is_call) {
      auto [it, inserted] = out.fun_map.try_emplace(
          std::string(tok.text), "fun" + std::to_string(out.fun_map.size() + 1));
      out.tokens.push_back(it->second);
    } else {
      // A name already mapped as a function keeps its fun alias when it
      // appears without parentheses (function pointers).
      auto fit = out.fun_map.find(tok.text);
      if (fit != out.fun_map.end()) {
        out.tokens.push_back(fit->second);
        out.lines.push_back(tok.line);
        continue;
      }
      auto [it, inserted] = out.var_map.try_emplace(
          std::string(tok.text), "var" + std::to_string(out.var_map.size() + 1));
      out.tokens.push_back(it->second);
    }
    out.lines.push_back(tok.line);
  }
  return out;
}

NormalizedGadget normalize_gadget(const slicer::CodeGadget& gadget) {
  util::trace::ScopedSpan span("normalize");
  NormalizedGadget norm = normalize_text(gadget.text());
  util::metrics::counter_add("normalize.gadgets");
  util::metrics::counter_add("normalize.tokens",
                             static_cast<long long>(norm.tokens.size()));
  if (norm.tokens.empty()) {
    util::metrics::counter_add("normalize.drop.empty_token_stream");
  }
  return norm;
}

}  // namespace sevuldet::normalize
