#include "sevuldet/normalize/vocab.hpp"

#include <algorithm>
#include <stdexcept>

#include "sevuldet/util/strings.hpp"

namespace sevuldet::normalize {

Vocabulary::Vocabulary() {
  id_to_token_ = {"<pad>", "<unk>"};
  id_freq_ = {0, 0};
}

void Vocabulary::count(const std::string& token) {
  if (frozen_) throw std::logic_error("Vocabulary is frozen");
  ++counts_[token];
}

void Vocabulary::count_all(const std::vector<std::string>& tokens) {
  for (const auto& t : tokens) count(t);
}

void Vocabulary::freeze(int min_count) {
  if (frozen_) return;
  std::vector<std::pair<std::string, long long>> entries(counts_.begin(),
                                                         counts_.end());
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  for (auto& [token, freq] : entries) {
    if (freq < min_count) continue;
    token_to_id_[token] = static_cast<int>(id_to_token_.size());
    id_to_token_.push_back(token);
    id_freq_.push_back(freq);
  }
  frozen_ = true;
}

int Vocabulary::id(const std::string& token) const {
  auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? kUnk : it->second;
}

std::vector<int> Vocabulary::encode(const std::vector<std::string>& tokens) const {
  std::vector<int> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(id(t));
  return out;
}

const std::string& Vocabulary::token(int token_id) const {
  return id_to_token_.at(static_cast<std::size_t>(token_id));
}

long long Vocabulary::frequency(int token_id) const {
  return id_freq_.at(static_cast<std::size_t>(token_id));
}

std::string Vocabulary::serialize() const {
  std::string out;
  for (std::size_t i = 2; i < id_to_token_.size(); ++i) {
    out += id_to_token_[i];
    out += '\t';
    out += std::to_string(id_freq_[i]);
    out += '\n';
  }
  return out;
}

Vocabulary Vocabulary::deserialize(const std::string& text) {
  Vocabulary vocab;
  for (const auto& line : util::split_lines(text)) {
    auto fields = util::split(line, '\t');
    if (fields.size() != 2) continue;
    vocab.token_to_id_[fields[0]] = static_cast<int>(vocab.id_to_token_.size());
    vocab.id_to_token_.push_back(fields[0]);
    vocab.id_freq_.push_back(std::stoll(fields[1]));
  }
  vocab.frozen_ = true;
  return vocab;
}

}  // namespace sevuldet::normalize
