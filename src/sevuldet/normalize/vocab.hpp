// Token vocabulary shared by word2vec and the detection models. Ids are
// dense; id 0 is <pad> (used by the fixed-length RNN baselines), id 1 is
// <unk> for tokens unseen at training time.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace sevuldet::normalize {

class Vocabulary {
 public:
  static constexpr int kPad = 0;
  static constexpr int kUnk = 1;

  Vocabulary();

  /// Count one occurrence during corpus scanning.
  void count(const std::string& token);
  void count_all(const std::vector<std::string>& tokens);

  /// Freeze the vocabulary: tokens with at least `min_count` occurrences
  /// get ids in descending frequency order. Counting further tokens
  /// after freezing throws.
  void freeze(int min_count = 1);
  bool frozen() const { return frozen_; }

  /// Token -> id (<unk> when absent). Valid after freeze().
  int id(const std::string& token) const;
  std::vector<int> encode(const std::vector<std::string>& tokens) const;

  /// id -> token spelling.
  const std::string& token(int id) const;

  /// Number of ids including <pad>/<unk>.
  int size() const { return static_cast<int>(id_to_token_.size()); }

  /// Total occurrences counted for an id (0 for pad/unk).
  long long frequency(int id) const;

  /// Plain-text round trip: "token<TAB>count" per line.
  std::string serialize() const;
  static Vocabulary deserialize(const std::string& text);

 private:
  bool frozen_ = false;
  std::unordered_map<std::string, long long> counts_;
  std::unordered_map<std::string, int> token_to_id_;
  std::vector<std::string> id_to_token_;
  std::vector<long long> id_freq_;
};

}  // namespace sevuldet::normalize
