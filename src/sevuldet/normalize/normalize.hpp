// Step III of the paper: normalize code gadgets. User-defined variable
// and function names are mapped to ordered placeholder sets ("var1",
// "var2", ... / "fun1", "fun2", ...) in first-appearance order; keywords,
// macros, library/API function names, and constants stay intact;
// non-ASCII bytes are dropped. The output token stream is what Step IV
// embeds.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sevuldet/slicer/gadget.hpp"

namespace sevuldet::normalize {

struct NormalizedGadget {
  std::vector<std::string> tokens;           // normalized token stream
  /// Provenance: 1-based line of token i within the normalized text
  /// (for a gadget, its index into CodeGadget::lines + 1). Always the
  /// same length as `tokens`; 0 when the position is unknown.
  std::vector<int> lines;
  // std::less<> so lookups take the lexer's string_view tokens without
  // materializing a std::string per probe.
  std::map<std::string, std::string, std::less<>> var_map;  // original -> varK
  std::map<std::string, std::string, std::less<>> fun_map;  // original -> funK

  std::string text() const;  // tokens joined by spaces

  /// Inverse of var_map ∪ fun_map: "var3" -> original spelling. The
  /// forward maps are injective per gadget (placeholders are assigned
  /// sequentially), so this inversion is lossless — the basis of the
  /// attention-provenance round trip.
  std::map<std::string, std::string> placeholder_to_original() const;

  /// Original spelling of one normalized token (the token itself when it
  /// is not a placeholder — keywords, literals, library functions).
  std::string original_token(const std::string& token) const;
};

/// Normalize raw gadget text (one statement per line).
NormalizedGadget normalize_text(const std::string& gadget_text);

/// Normalize a slicer gadget.
NormalizedGadget normalize_gadget(const slicer::CodeGadget& gadget);

/// Tokenize without renaming (used by the VUDDY-like baseline and tests).
std::vector<std::string> tokenize_text(const std::string& text);

}  // namespace sevuldet::normalize
