// Reaching-definitions dataflow over the CFG and the data-dependence
// edges derived from it (Definition 2 of the paper): unit Y is
// data-dependent on unit X when X defines a variable that Y uses and
// that definition reaches Y along some CFG path.
#pragma once

#include <string>
#include <vector>

#include "sevuldet/graph/cfg.hpp"
#include "sevuldet/graph/stmt_units.hpp"

namespace sevuldet::graph {

struct DataDep {
  int from = -1;  // defining unit
  int to = -1;    // using unit
  std::string var;
};

struct DataDeps {
  std::vector<DataDep> edges;
  // deps[n] = defining units n depends on; dependents[n] = inverse.
  std::vector<std::vector<int>> deps;
  std::vector<std::vector<int>> dependents;
};

/// Worklist reaching-definitions; definitions are (unit, variable) pairs.
/// Function parameters are modeled as definitions at entry, so a use of
/// an otherwise-undefined parameter creates no spurious intra-unit edges.
DataDeps compute_data_deps(const Cfg& cfg, const std::vector<StmtUnit>& units);

}  // namespace sevuldet::graph
