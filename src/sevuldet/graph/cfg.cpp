#include "sevuldet/graph/cfg.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace sevuldet::graph {

using frontend::Stmt;
using frontend::StmtKind;

bool Cfg::has_edge(int from, int to) const {
  const auto& s = succ[static_cast<std::size_t>(from)];
  return std::find(s.begin(), s.end(), to) != s.end();
}

namespace {

/// A partially built sub-graph: `first` is the entry unit (-1 for an
/// empty fragment) and `ends` are the units whose control falls through
/// to whatever follows the fragment.
struct Fragment {
  int first = -1;
  std::vector<int> ends;
};

struct LoopCtx {
  std::vector<int> break_sources;
  int continue_target = -1;  // -1 while the target unit is not yet known
  std::vector<int> pending_continues;
};

class CfgBuilder {
 public:
  CfgBuilder(const frontend::FunctionDef& fn, const std::vector<StmtUnit>& units)
      : fn_(fn), units_(units) {
    cfg_.num_units = static_cast<int>(units.size());
    cfg_.succ.resize(static_cast<std::size_t>(cfg_.num_nodes()));
    cfg_.pred.resize(static_cast<std::size_t>(cfg_.num_nodes()));
    for (const auto& unit : units) {
      unit_of_[key_of(unit)] = unit.id;
      if (unit.kind == UnitKind::Label) labels_[unit.stmt->name] = unit.id;
    }
  }

  Cfg build() {
    Fragment body = walk(*fn_.body);
    if (body.first >= 0) {
      add_edge(cfg_.entry(), body.first);
    } else {
      add_edge(cfg_.entry(), cfg_.exit());
    }
    for (int end : body.ends) add_edge(end, cfg_.exit());
    for (const auto& [goto_id, label] : goto_fixups_) {
      auto it = labels_.find(label);
      if (it == labels_.end()) {
        // Unresolved label — treat as function exit so the CFG stays
        // well-formed on partial code.
        add_edge(goto_id, cfg_.exit());
      } else {
        add_edge(goto_id, it->second);
      }
    }
    // A function whose body never reaches Exit (e.g. infinite loop)
    // still needs Exit reachable for post-dominance. Repeatedly connect
    // the first entry-reachable node that cannot reach Exit — for a
    // `for (;;)` this is the loop predicate, which models "the loop may
    // terminate" without disturbing control dependence elsewhere.
    for (;;) {
      std::vector<char> reaches_exit(static_cast<std::size_t>(cfg_.num_nodes()), 0);
      std::vector<int> stack{cfg_.exit()};
      reaches_exit[static_cast<std::size_t>(cfg_.exit())] = 1;
      while (!stack.empty()) {
        int n = stack.back();
        stack.pop_back();
        for (int p : cfg_.pred[static_cast<std::size_t>(n)]) {
          if (!reaches_exit[static_cast<std::size_t>(p)]) {
            reaches_exit[static_cast<std::size_t>(p)] = 1;
            stack.push_back(p);
          }
        }
      }
      std::vector<char> from_entry(static_cast<std::size_t>(cfg_.num_nodes()), 0);
      stack.push_back(cfg_.entry());
      from_entry[static_cast<std::size_t>(cfg_.entry())] = 1;
      while (!stack.empty()) {
        int n = stack.back();
        stack.pop_back();
        for (int s : cfg_.succ[static_cast<std::size_t>(n)]) {
          if (!from_entry[static_cast<std::size_t>(s)]) {
            from_entry[static_cast<std::size_t>(s)] = 1;
            stack.push_back(s);
          }
        }
      }
      int stuck = -1;
      for (int n = 0; n < cfg_.num_units; ++n) {
        if (from_entry[static_cast<std::size_t>(n)] &&
            !reaches_exit[static_cast<std::size_t>(n)]) {
          stuck = n;
          break;
        }
      }
      if (stuck < 0) break;
      add_edge(stuck, cfg_.exit());
    }
    return std::move(cfg_);
  }

 private:
  // A unit is identified by its Stmt plus a role discriminator: the For
  // statement owns the ForPred unit while its init child owns ForInit,
  // and both pointers are distinct, so the Stmt pointer alone suffices.
  static const void* key_of(const StmtUnit& unit) { return unit.stmt; }

  int unit_id(const Stmt& stmt) const {
    auto it = unit_of_.find(&stmt);
    if (it == unit_of_.end()) throw std::logic_error("CFG: unknown statement");
    return it->second;
  }

  void add_edge(int from, int to) {
    if (cfg_.has_edge(from, to)) return;
    cfg_.succ[static_cast<std::size_t>(from)].push_back(to);
    cfg_.pred[static_cast<std::size_t>(to)].push_back(from);
  }

  void connect(const std::vector<int>& ends, int to) {
    for (int e : ends) add_edge(e, to);
  }

  /// Sequence a list of child statements.
  Fragment walk_sequence(const std::vector<frontend::StmtPtr>& children,
                         std::size_t from = 0) {
    Fragment out;
    std::vector<int> dangling;
    for (std::size_t i = from; i < children.size(); ++i) {
      Fragment piece = walk(*children[i]);
      if (piece.first < 0) continue;  // empty statement
      if (out.first < 0) out.first = piece.first;
      connect(dangling, piece.first);
      dangling = std::move(piece.ends);
    }
    out.ends = std::move(dangling);
    return out;
  }

  Fragment walk(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::Compound:
        return walk_sequence(stmt.children);
      case StmtKind::Decl:
      case StmtKind::ExprStmt: {
        int id = unit_id(stmt);
        return {id, {id}};
      }
      case StmtKind::If: {
        int pred = unit_id(stmt);
        Fragment out{pred, {}};
        Fragment then_frag = walk(*stmt.children[0]);
        if (then_frag.first >= 0) {
          add_edge(pred, then_frag.first);
          out.ends.insert(out.ends.end(), then_frag.ends.begin(), then_frag.ends.end());
        } else {
          out.ends.push_back(pred);
        }
        if (stmt.children.size() > 1) {
          Fragment else_frag = walk(*stmt.children[1]);
          if (else_frag.first >= 0) {
            add_edge(pred, else_frag.first);
            out.ends.insert(out.ends.end(), else_frag.ends.begin(), else_frag.ends.end());
          } else {
            out.ends.push_back(pred);
          }
        } else {
          out.ends.push_back(pred);
        }
        return out;
      }
      case StmtKind::While: {
        int pred = unit_id(stmt);
        loops_.push_back({});
        loops_.back().continue_target = pred;
        Fragment body = walk(*stmt.children[0]);
        LoopCtx ctx = std::move(loops_.back());
        loops_.pop_back();
        if (body.first >= 0) {
          add_edge(pred, body.first);
          connect(body.ends, pred);
        } else {
          add_edge(pred, pred);
        }
        Fragment out{pred, {pred}};
        out.ends.insert(out.ends.end(), ctx.break_sources.begin(),
                        ctx.break_sources.end());
        return out;
      }
      case StmtKind::DoWhile: {
        int pred = unit_id(stmt);
        loops_.push_back({});
        loops_.back().continue_target = pred;
        Fragment body = walk(*stmt.children[0]);
        LoopCtx ctx = std::move(loops_.back());
        loops_.pop_back();
        int first = body.first >= 0 ? body.first : pred;
        connect(body.ends, pred);
        add_edge(pred, first);  // back edge
        Fragment out{first, {pred}};
        out.ends.insert(out.ends.end(), ctx.break_sources.begin(),
                        ctx.break_sources.end());
        return out;
      }
      case StmtKind::For: {
        int pred = unit_id(stmt);
        std::size_t body_idx = 0;
        int first = pred;
        if (stmt.for_has_init) {
          int init = unit_id(*stmt.children[0]);
          add_edge(init, pred);
          first = init;
          body_idx = 1;
        }
        loops_.push_back({});
        loops_.back().continue_target = pred;
        Fragment body = walk(*stmt.children[body_idx]);
        LoopCtx ctx = std::move(loops_.back());
        loops_.pop_back();
        if (body.first >= 0) {
          add_edge(pred, body.first);
          connect(body.ends, pred);
        } else {
          add_edge(pred, pred);
        }
        Fragment out{first, {}};
        if (stmt.for_has_cond) out.ends.push_back(pred);
        out.ends.insert(out.ends.end(), ctx.break_sources.begin(),
                        ctx.break_sources.end());
        return out;
      }
      case StmtKind::Switch: {
        int pred = unit_id(stmt);
        loops_.push_back({});  // break context only; continue passes through
        loops_.back().continue_target =
            loops_.size() >= 2 ? loops_[loops_.size() - 2].continue_target : -1;
        bool has_default = false;
        std::vector<int> fallthrough;  // open ends of the previous case body
        for (const auto& child : stmt.children) {
          if (child->kind != StmtKind::Case) {
            // Loose statement inside the switch (rare) — unreachable
            // unless fallen into.
            Fragment frag = walk(*child);
            if (frag.first >= 0) {
              connect(fallthrough, frag.first);
              fallthrough = std::move(frag.ends);
            }
            continue;
          }
          int label_id = unit_id(*child);
          add_edge(pred, label_id);
          connect(fallthrough, label_id);
          if (child->name == "default") has_default = true;
          Fragment body = walk_sequence(child->children);
          if (body.first >= 0) {
            add_edge(label_id, body.first);
            fallthrough = std::move(body.ends);
          } else {
            fallthrough = {label_id};
          }
        }
        LoopCtx ctx = std::move(loops_.back());
        loops_.pop_back();
        // Continues inside a switch belong to the enclosing loop.
        if (!loops_.empty()) {
          for (int c : ctx.pending_continues) {
            add_edge(c, loops_.back().continue_target);
          }
        }
        Fragment out{pred, std::move(fallthrough)};
        if (!has_default) out.ends.push_back(pred);
        out.ends.insert(out.ends.end(), ctx.break_sources.begin(),
                        ctx.break_sources.end());
        return out;
      }
      case StmtKind::Case:
        throw std::logic_error("CFG: case outside switch walk");
      case StmtKind::Break: {
        int id = unit_id(stmt);
        if (!loops_.empty()) {
          loops_.back().break_sources.push_back(id);
        } else {
          add_edge(id, cfg_.exit());
        }
        return {id, {}};
      }
      case StmtKind::Continue: {
        int id = unit_id(stmt);
        bool handled = false;
        for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
          if (it->continue_target >= 0) {
            add_edge(id, it->continue_target);
            handled = true;
            break;
          }
        }
        if (!handled && !loops_.empty()) {
          loops_.back().pending_continues.push_back(id);
          handled = true;
        }
        if (!handled) add_edge(id, cfg_.exit());
        return {id, {}};
      }
      case StmtKind::Return: {
        int id = unit_id(stmt);
        add_edge(id, cfg_.exit());
        return {id, {}};
      }
      case StmtKind::Goto: {
        int id = unit_id(stmt);
        goto_fixups_.emplace_back(id, stmt.name);
        return {id, {}};
      }
      case StmtKind::Label: {
        int id = unit_id(stmt);
        Fragment body = walk_sequence(stmt.children);
        if (body.first >= 0) {
          add_edge(id, body.first);
          return {id, std::move(body.ends)};
        }
        return {id, {id}};
      }
      case StmtKind::Null:
        return {};
    }
    return {};
  }

  const frontend::FunctionDef& fn_;
  const std::vector<StmtUnit>& units_;
  Cfg cfg_;
  std::map<const void*, int> unit_of_;
  std::map<std::string, int> labels_;
  std::vector<std::pair<int, std::string>> goto_fixups_;
  std::vector<LoopCtx> loops_;
};

}  // namespace

Cfg build_cfg(const frontend::FunctionDef& fn, const std::vector<StmtUnit>& units) {
  return CfgBuilder(fn, units).build();
}

std::string cfg_to_dot(const Cfg& cfg, const std::vector<StmtUnit>& units) {
  std::string out = "digraph cfg {\n";
  out += "  entry [shape=diamond];\n  exit [shape=diamond];\n";
  auto name_of = [&](int id) {
    if (id == cfg.entry()) return std::string("entry");
    if (id == cfg.exit()) return std::string("exit");
    // Built up in place: GCC 12 mis-fires -Wrestrict on the
    // `const char* + std::string&&` overload (libstdc++ PR105329).
    std::string name = "n";
    name += std::to_string(id);
    return name;
  };
  for (const auto& unit : units) {
    std::string label = std::to_string(unit.line) + ": " + unit.text;
    std::string escaped;
    for (char c : label) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    out += "  n" + std::to_string(unit.id) + " [label=\"" + escaped + "\"];\n";
  }
  for (int from = 0; from < cfg.num_nodes(); ++from) {
    for (int to : cfg.succ[static_cast<std::size_t>(from)]) {
      out += "  " + name_of(from) + " -> " + name_of(to) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace sevuldet::graph
