// Per-gadget dependence graph carried alongside the flat token stream:
// one node per gadget line, typed edges projected from the PDG (data,
// control, call). This is the input the GAT backbone consumes directly
// — the CNN path keeps flattening to tokens and never reads it.
//
// Header-only and dependency-free on purpose: models/ (which must not
// link the frontend/graph libraries) includes this through
// models/model.hpp, and dataset/corpus_io serializes it (format v2).
//
// Invariants (enforced by dataset/gadget_graph.cpp's builder and
// asserted in tests):
//   - node_offsets is a CSR span array over the gadget's token stream:
//     node i covers tokens [node_offsets[i], node_offsets[i+1]), spans
//     are ascending and cover every token exactly once;
//   - edges are sorted by (to, from, type) and deduplicated, so
//     grouping by destination for the masked segment-softmax is a
//     linear walk and every neighborhood accumulates in one
//     deterministic ascending order;
//   - self-loops are NOT stored; the model adds one per node at forward
//     time (every node must attend to itself even with no in-edges).
#pragma once

#include <cstdint>
#include <vector>

namespace sevuldet::graph {

enum class GadgetEdgeType : std::uint8_t {
  kControl = 0,  // control dependence (Definition 3)
  kData = 1,     // data dependence (Definition 2)
  kCall = 2,     // call-site -> callee entry, inter-procedural gadgets
};

inline constexpr int kGadgetEdgeTypes = 3;  // excludes the implicit self type

struct GadgetEdge {
  std::uint32_t from = 0;  // source node (gadget-line index)
  std::uint32_t to = 0;    // destination node
  GadgetEdgeType type = GadgetEdgeType::kControl;

  friend bool operator==(const GadgetEdge& a, const GadgetEdge& b) {
    return a.from == b.from && a.to == b.to && a.type == b.type;
  }
};

struct GadgetGraph {
  /// CSR token spans, size = node_count() + 1 (empty when the gadget has
  /// no provenance — e.g. the scan frontend's lex-fallback gadgets; the
  /// GAT model then treats the whole token stream as a single node).
  std::vector<std::uint32_t> node_offsets;
  std::vector<GadgetEdge> edges;

  int node_count() const {
    return node_offsets.empty() ? 0
                                : static_cast<int>(node_offsets.size()) - 1;
  }
  bool empty() const { return node_offsets.empty(); }

  friend bool operator==(const GadgetGraph& a, const GadgetGraph& b) {
    return a.node_offsets == b.node_offsets && a.edges == b.edges;
  }
};

}  // namespace sevuldet::graph
