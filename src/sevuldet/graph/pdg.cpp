#include "sevuldet/graph/pdg.hpp"

#include "sevuldet/frontend/parser.hpp"
#include "sevuldet/util/metrics.hpp"
#include "sevuldet/util/strings.hpp"
#include "sevuldet/util/trace.hpp"

namespace sevuldet::graph {

const std::string& ProgramGraph::line_text(int line) const {
  static const std::string kEmpty;
  if (line < 1 || static_cast<std::size_t>(line) > source_lines.size()) return kEmpty;
  return source_lines[static_cast<std::size_t>(line - 1)];
}

std::vector<int> FunctionPdg::call_sites(const std::string& callee) const {
  std::vector<int> out;
  for (const auto& u : units) {
    for (const auto& c : u.use_def.calls) {
      if (c == callee) {
        out.push_back(u.id);
        break;
      }
    }
  }
  return out;
}

int FunctionPdg::unit_at_line(int line) const {
  for (const auto& u : units) {
    if (u.line == line) return u.id;
  }
  return -1;
}

const FunctionPdg* ProgramGraph::pdg_of(const std::string& fn_name) const {
  for (const auto& f : functions) {
    if (f.fn->name == fn_name) return &f;
  }
  return nullptr;
}

std::vector<const CallEdge*> ProgramGraph::callers_of(const std::string& fn_name) const {
  std::vector<const CallEdge*> out;
  for (const auto& edge : calls) {
    if (edge.callee == fn_name) out.push_back(&edge);
  }
  return out;
}

FunctionPdg build_function_pdg(const frontend::FunctionDef& fn) {
  FunctionPdg pdg;
  pdg.fn = &fn;
  pdg.units = flatten_function(fn);
  pdg.cfg = build_cfg(fn, pdg.units);
  pdg.data = compute_data_deps(pdg.cfg, pdg.units);
  pdg.control = compute_control_deps(pdg.cfg);
  return pdg;
}

ProgramGraph build_program_graph(frontend::TranslationUnit unit) {
  util::trace::ScopedSpan span("pdg");
  ProgramGraph graph;
  graph.unit = std::move(unit);
  graph.functions.reserve(graph.unit.functions.size());
  for (const auto& fn : graph.unit.functions) {
    graph.functions.push_back(build_function_pdg(fn));
  }
  for (const auto& pdg : graph.functions) {
    for (const auto& u : pdg.units) {
      for (const auto& callee : u.use_def.calls) {
        if (graph.unit.find_function(callee) != nullptr) {
          graph.calls.push_back({pdg.fn->name, callee, u.id});
        }
      }
    }
  }
  util::metrics::counter_add("pdg.graphs_built");
  util::metrics::counter_add("pdg.functions",
                             static_cast<long long>(graph.functions.size()));
  return graph;
}

ProgramGraph build_program_graph(frontend::TranslationUnit unit,
                                 std::string_view source) {
  ProgramGraph graph = build_program_graph(std::move(unit));
  graph.source = std::string(source);
  graph.source_lines.clear();
  for (const auto& raw : util::split_lines(graph.source)) {
    graph.source_lines.emplace_back(util::trim(raw));
  }
  return graph;
}

ProgramGraph build_program_graph(std::string_view source) {
  return build_program_graph(frontend::parse(source), source);
}

}  // namespace sevuldet::graph
