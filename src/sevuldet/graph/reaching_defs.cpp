#include "sevuldet/graph/reaching_defs.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace sevuldet::graph {

DataDeps compute_data_deps(const Cfg& cfg, const std::vector<StmtUnit>& units) {
  // Enumerate definitions: one bit per (unit, var) pair.
  struct DefSite {
    int unit;
    std::string var;
  };
  std::vector<DefSite> def_sites;
  std::map<std::string, std::vector<int>> defs_of_var;  // var -> def indices
  for (const auto& unit : units) {
    for (const auto& var : unit.use_def.defs) {
      defs_of_var[var].push_back(static_cast<int>(def_sites.size()));
      def_sites.push_back({unit.id, var});
    }
  }
  const std::size_t num_defs = def_sites.size();
  const std::size_t num_nodes = static_cast<std::size_t>(cfg.num_nodes());

  // Bitset per node, packed in uint64_t words.
  const std::size_t words = (num_defs + 63) / 64;
  auto make_set = [&]() { return std::vector<std::uint64_t>(words, 0); };
  std::vector<std::vector<std::uint64_t>> in(num_nodes), out(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    in[n] = make_set();
    out[n] = make_set();
  }

  // gen/kill per unit node.
  std::vector<std::vector<std::uint64_t>> gen(num_nodes), kill(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    gen[n] = make_set();
    kill[n] = make_set();
  }
  for (std::size_t d = 0; d < num_defs; ++d) {
    const auto& site = def_sites[d];
    gen[static_cast<std::size_t>(site.unit)][d / 64] |= (1ULL << (d % 64));
    // Kill every other definition of the same variable.
    for (int other : defs_of_var[site.var]) {
      if (other != static_cast<int>(d)) {
        kill[static_cast<std::size_t>(site.unit)][static_cast<std::size_t>(other) / 64] |=
            (1ULL << (static_cast<std::size_t>(other) % 64));
      }
    }
  }

  // Iterate to fixpoint (forward, may union).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t n = 0; n < num_nodes; ++n) {
      auto new_in = make_set();
      for (int p : cfg.pred[n]) {
        const auto& po = out[static_cast<std::size_t>(p)];
        for (std::size_t w = 0; w < words; ++w) new_in[w] |= po[w];
      }
      auto new_out = new_in;
      for (std::size_t w = 0; w < words; ++w) {
        new_out[w] = (new_in[w] & ~kill[n][w]) | gen[n][w];
      }
      if (new_in != in[n] || new_out != out[n]) {
        in[n] = std::move(new_in);
        out[n] = std::move(new_out);
        changed = true;
      }
    }
  }

  DataDeps result;
  result.deps.resize(units.size());
  result.dependents.resize(units.size());
  std::set<std::pair<int, int>> seen;
  for (const auto& unit : units) {
    const auto& reach = in[static_cast<std::size_t>(unit.id)];
    for (const auto& var : unit.use_def.uses) {
      auto it = defs_of_var.find(var);
      if (it == defs_of_var.end()) continue;
      for (int d : it->second) {
        if (!(reach[static_cast<std::size_t>(d) / 64] &
              (1ULL << (static_cast<std::size_t>(d) % 64)))) {
          continue;
        }
        int from = def_sites[static_cast<std::size_t>(d)].unit;
        if (from == unit.id) continue;  // self-loop (e.g. i++) is not an edge
        result.edges.push_back({from, unit.id, var});
        if (seen.insert({from, unit.id}).second) {
          result.deps[static_cast<std::size_t>(unit.id)].push_back(from);
          result.dependents[static_cast<std::size_t>(from)].push_back(unit.id);
        }
      }
    }
  }
  for (auto& v : result.deps) std::sort(v.begin(), v.end());
  for (auto& v : result.dependents) std::sort(v.begin(), v.end());
  // Pin a deterministic (from, to, var) order on the flat edge list. The
  // construction above iterates defs_of_var (map insertion order leaks
  // into the sequence), which was harmless while only the sorted
  // deps/dependents adjacency was consumed — but GAT aggregation walks
  // the edge list itself, and its segment accumulation must be
  // byte-stable across thread counts and rebuild orders (pdg_test pins
  // this).
  std::sort(result.edges.begin(), result.edges.end(),
            [](const DataDep& a, const DataDep& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.var < b.var;
            });
  return result;
}

}  // namespace sevuldet::graph
