#include "sevuldet/graph/stmt_units.hpp"

#include "sevuldet/frontend/ast_text.hpp"

namespace sevuldet::graph {

using frontend::Stmt;
using frontend::StmtKind;

bool is_control_predicate(UnitKind kind) {
  switch (kind) {
    case UnitKind::IfPred:
    case UnitKind::ForPred:
    case UnitKind::WhilePred:
    case UnitKind::DoWhilePred:
    case UnitKind::SwitchPred:
    case UnitKind::CaseLabel:
      return true;
    default:
      return false;
  }
}

const char* unit_kind_name(UnitKind kind) {
  switch (kind) {
    case UnitKind::Decl: return "decl";
    case UnitKind::Expr: return "expr";
    case UnitKind::IfPred: return "if";
    case UnitKind::ForInit: return "for-init";
    case UnitKind::ForPred: return "for";
    case UnitKind::WhilePred: return "while";
    case UnitKind::DoWhilePred: return "do-while";
    case UnitKind::SwitchPred: return "switch";
    case UnitKind::CaseLabel: return "case";
    case UnitKind::Break: return "break";
    case UnitKind::Continue: return "continue";
    case UnitKind::Return: return "return";
    case UnitKind::Goto: return "goto";
    case UnitKind::Label: return "label";
  }
  return "?";
}

namespace {

class Flattener {
 public:
  std::vector<StmtUnit> run(const frontend::FunctionDef& fn) {
    walk(*fn.body);
    return std::move(units_);
  }

 private:
  StmtUnit& add(UnitKind kind, const Stmt& stmt) {
    StmtUnit unit;
    unit.id = static_cast<int>(units_.size());
    unit.kind = kind;
    unit.stmt = &stmt;
    unit.line = stmt.range.begin_line;
    unit.text = frontend::stmt_header_text(stmt);
    unit.use_def = frontend::analyze_stmt(stmt);
    units_.push_back(std::move(unit));
    return units_.back();
  }

  void walk(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::Compound:
        for (const auto& child : stmt.children) walk(*child);
        return;
      case StmtKind::Decl:
        add(UnitKind::Decl, stmt);
        return;
      case StmtKind::ExprStmt:
        add(UnitKind::Expr, stmt);
        return;
      case StmtKind::If:
        add(UnitKind::IfPred, stmt);
        walk(*stmt.children[0]);
        if (stmt.children.size() > 1) walk(*stmt.children[1]);
        return;
      case StmtKind::While:
        add(UnitKind::WhilePred, stmt);
        walk(*stmt.children[0]);
        return;
      case StmtKind::DoWhile:
        // Source order: the body precedes the trailing predicate.
        walk(*stmt.children[0]);
        add(UnitKind::DoWhilePred, stmt);
        return;
      case StmtKind::For: {
        std::size_t body_idx = 0;
        if (stmt.for_has_init) {
          const Stmt& init = *stmt.children[0];
          add(init.kind == StmtKind::Decl ? UnitKind::ForInit : UnitKind::ForInit,
              init);
          body_idx = 1;
        }
        add(UnitKind::ForPred, stmt);
        walk(*stmt.children[body_idx]);
        return;
      }
      case StmtKind::Switch:
        add(UnitKind::SwitchPred, stmt);
        for (const auto& child : stmt.children) walk(*child);
        return;
      case StmtKind::Case:
        add(UnitKind::CaseLabel, stmt);
        for (const auto& child : stmt.children) walk(*child);
        return;
      case StmtKind::Break:
        add(UnitKind::Break, stmt);
        return;
      case StmtKind::Continue:
        add(UnitKind::Continue, stmt);
        return;
      case StmtKind::Return:
        add(UnitKind::Return, stmt);
        return;
      case StmtKind::Goto:
        add(UnitKind::Goto, stmt);
        return;
      case StmtKind::Label:
        add(UnitKind::Label, stmt);
        for (const auto& child : stmt.children) walk(*child);
        return;
      case StmtKind::Null:
        return;  // no semantic content
    }
  }

  std::vector<StmtUnit> units_;
};

}  // namespace

std::vector<StmtUnit> flatten_function(const frontend::FunctionDef& fn) {
  return Flattener().run(fn);
}

}  // namespace sevuldet::graph
