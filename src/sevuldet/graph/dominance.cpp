#include "sevuldet/graph/dominance.hpp"

#include <algorithm>

namespace sevuldet::graph {

bool DominatorTree::dominates(int a, int b) const {
  if (a < 0 || b < 0) return false;
  int n = b;
  for (;;) {
    if (n == a) return true;
    if (n < 0 || static_cast<std::size_t>(n) >= idom.size()) return false;
    int up = idom[static_cast<std::size_t>(n)];
    if (up == n || up < 0) return n == a;
    n = up;
  }
}

namespace {

/// Cooper-Harvey-Kennedy "engineered" dominator algorithm.
DominatorTree compute(int num_nodes, int root,
                      const std::vector<std::vector<int>>& succ,
                      const std::vector<std::vector<int>>& pred) {
  // Reverse post-order from root.
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(num_nodes));
  std::vector<char> visited(static_cast<std::size_t>(num_nodes), 0);
  // Iterative DFS with explicit stack of (node, next-child-index).
  std::vector<std::pair<int, std::size_t>> stack;
  stack.emplace_back(root, 0);
  visited[static_cast<std::size_t>(root)] = 1;
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    const auto& out = succ[static_cast<std::size_t>(node)];
    if (idx < out.size()) {
      int next = out[idx++];
      if (!visited[static_cast<std::size_t>(next)]) {
        visited[static_cast<std::size_t>(next)] = 1;
        stack.emplace_back(next, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());  // now reverse post-order

  std::vector<int> rpo_number(static_cast<std::size_t>(num_nodes), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    rpo_number[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }

  DominatorTree tree;
  tree.root = root;
  tree.idom.assign(static_cast<std::size_t>(num_nodes), -1);
  tree.idom[static_cast<std::size_t>(root)] = root;

  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpo_number[static_cast<std::size_t>(a)] >
             rpo_number[static_cast<std::size_t>(b)]) {
        a = tree.idom[static_cast<std::size_t>(a)];
      }
      while (rpo_number[static_cast<std::size_t>(b)] >
             rpo_number[static_cast<std::size_t>(a)]) {
        b = tree.idom[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (int node : order) {
      if (node == root) continue;
      int new_idom = -1;
      for (int p : pred[static_cast<std::size_t>(node)]) {
        if (tree.idom[static_cast<std::size_t>(p)] < 0) continue;  // unprocessed
        new_idom = new_idom < 0 ? p : intersect(p, new_idom);
      }
      if (new_idom >= 0 && tree.idom[static_cast<std::size_t>(node)] != new_idom) {
        tree.idom[static_cast<std::size_t>(node)] = new_idom;
        changed = true;
      }
    }
  }
  return tree;
}

}  // namespace

DominatorTree compute_dominators(const Cfg& cfg) {
  return compute(cfg.num_nodes(), cfg.entry(), cfg.succ, cfg.pred);
}

DominatorTree compute_post_dominators(const Cfg& cfg) {
  return compute(cfg.num_nodes(), cfg.exit(), cfg.pred, cfg.succ);
}

}  // namespace sevuldet::graph
