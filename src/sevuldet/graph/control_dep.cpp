#include "sevuldet/graph/control_dep.hpp"

#include <algorithm>

namespace sevuldet::graph {

ControlDeps compute_control_deps(const Cfg& cfg) {
  return compute_control_deps(cfg, compute_post_dominators(cfg));
}

ControlDeps compute_control_deps(const Cfg& cfg, const DominatorTree& post_dom) {
  ControlDeps out;
  out.deps.resize(static_cast<std::size_t>(cfg.num_units));
  out.dependents.resize(static_cast<std::size_t>(cfg.num_units));

  for (int x = 0; x < cfg.num_nodes(); ++x) {
    for (int y : cfg.succ[static_cast<std::size_t>(x)]) {
      if (post_dom.dominates(y, x)) continue;
      // Walk the post-dominator tree from y toward ipostdom(x).
      int stop = post_dom.idom[static_cast<std::size_t>(x)];
      int node = y;
      while (node >= 0 && node != stop) {
        if (node < cfg.num_units && x < cfg.num_units && node != x) {
          out.deps[static_cast<std::size_t>(node)].push_back(x);
        }
        int up = post_dom.idom[static_cast<std::size_t>(node)];
        if (up == node) break;  // reached the root
        node = up;
      }
    }
  }

  for (std::size_t n = 0; n < out.deps.size(); ++n) {
    auto& d = out.deps[n];
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
    for (int c : d) out.dependents[static_cast<std::size_t>(c)].push_back(static_cast<int>(n));
  }
  return out;
}

}  // namespace sevuldet::graph
