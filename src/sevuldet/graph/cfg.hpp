// Intra-procedural control-flow graph over statement units. Handles the
// eight control statements of Algorithm 1 plus break/continue/goto/label/
// return, including switch fall-through. Entry/Exit are synthetic nodes.
#pragma once

#include <string>
#include <vector>

#include "sevuldet/frontend/ast.hpp"
#include "sevuldet/graph/stmt_units.hpp"

namespace sevuldet::graph {

struct Cfg {
  // Node ids: [0, num_units) are the StmtUnits; entry() and exit() are
  // synthetic.
  int num_units = 0;
  std::vector<std::vector<int>> succ;
  std::vector<std::vector<int>> pred;

  int entry() const { return num_units; }
  int exit() const { return num_units + 1; }
  int num_nodes() const { return num_units + 2; }

  bool has_edge(int from, int to) const;
};

/// Build the CFG for a flattened function. `units` must come from
/// flatten_function on the same FunctionDef.
Cfg build_cfg(const frontend::FunctionDef& fn, const std::vector<StmtUnit>& units);

/// Graphviz dump for debugging and the examples.
std::string cfg_to_dot(const Cfg& cfg, const std::vector<StmtUnit>& units);

}  // namespace sevuldet::graph
