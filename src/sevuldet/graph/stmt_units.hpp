// Statement units: the node granularity shared by the CFG, the PDG and
// the slicer. A unit is a simple statement or a control predicate — the
// same granularity Joern gives the paper ("we display the statement
// corresponding to each node with the line number", Fig. 3).
#pragma once

#include <string>
#include <vector>

#include "sevuldet/frontend/ast.hpp"
#include "sevuldet/frontend/ast_queries.hpp"

namespace sevuldet::graph {

enum class UnitKind {
  Decl,
  Expr,
  IfPred,
  ForInit,
  ForPred,     // condition + step of a for
  WhilePred,
  DoWhilePred,
  SwitchPred,
  CaseLabel,
  Break,
  Continue,
  Return,
  Goto,
  Label,
};

/// True for predicate units that open a control range (the paper's
/// "key node" syntax characteristics, Algorithm 1 Step a).
bool is_control_predicate(UnitKind kind);

struct StmtUnit {
  int id = -1;
  UnitKind kind = UnitKind::Expr;
  const frontend::Stmt* stmt = nullptr;  // non-owning; unit outlives by contract
  int line = 0;
  std::string text;            // rendered header text
  frontend::UseDef use_def;    // uses/defs/calls of this unit only
};

/// Flatten a function body into ordered units. Order is source order
/// (pre-order walk); ids are dense [0, n).
std::vector<StmtUnit> flatten_function(const frontend::FunctionDef& fn);

const char* unit_kind_name(UnitKind kind);

}  // namespace sevuldet::graph
