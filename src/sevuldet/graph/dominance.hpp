// Dominator and post-dominator computation (iterative Cooper-Harvey-
// Kennedy on a reverse-post-order numbering). Post-dominance drives the
// Ferrante-Ottenstein-Warren control-dependence construction used by the
// PDG (Definition 6 of the paper cites FOW [28]).
#pragma once

#include <vector>

#include "sevuldet/graph/cfg.hpp"

namespace sevuldet::graph {

struct DominatorTree {
  // idom[n] = immediate dominator node id; the root's idom is itself.
  // Unreachable nodes get idom -1.
  std::vector<int> idom;
  int root = -1;

  /// True if a dominates b (reflexive).
  bool dominates(int a, int b) const;
};

/// Dominators from the entry node over `succ` edges.
DominatorTree compute_dominators(const Cfg& cfg);

/// Post-dominators: dominators of the reverse CFG rooted at exit.
DominatorTree compute_post_dominators(const Cfg& cfg);

}  // namespace sevuldet::graph
