// Control dependence via the Ferrante-Ottenstein-Warren construction:
// for each CFG edge (X -> Y) where Y does not post-dominate X, every node
// on the post-dominator-tree path from Y up to (but excluding)
// ipostdom(X) is control-dependent on X. This matches Definition 3 of
// the paper.
#pragma once

#include <vector>

#include "sevuldet/graph/cfg.hpp"
#include "sevuldet/graph/dominance.hpp"

namespace sevuldet::graph {

struct ControlDeps {
  // deps[n] = ids of units n is control-dependent on (deduplicated,
  // sorted). Only unit nodes are recorded; entry/exit are dropped.
  std::vector<std::vector<int>> deps;
  // dependents[c] = units control-dependent on c (inverse map).
  std::vector<std::vector<int>> dependents;
};

ControlDeps compute_control_deps(const Cfg& cfg);
ControlDeps compute_control_deps(const Cfg& cfg, const DominatorTree& post_dom);

}  // namespace sevuldet::graph
