// Program Dependence Graph (Definition 6): statement units plus typed
// dependence edges (data = Definition 2, control = Definition 3), one
// PDG per function, and a whole-program view with a call graph for
// inter-procedural slicing (paper Step I.3 crosses function boundaries
// through call relationships).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sevuldet/frontend/ast.hpp"
#include "sevuldet/graph/cfg.hpp"
#include "sevuldet/graph/control_dep.hpp"
#include "sevuldet/graph/reaching_defs.hpp"
#include "sevuldet/graph/stmt_units.hpp"

namespace sevuldet::graph {

struct FunctionPdg {
  const frontend::FunctionDef* fn = nullptr;  // non-owning
  std::vector<StmtUnit> units;
  Cfg cfg;
  DataDeps data;
  ControlDeps control;

  /// Units whose call list contains `callee`.
  std::vector<int> call_sites(const std::string& callee) const;

  /// Unit ids by source line (first match), -1 if none.
  int unit_at_line(int line) const;
};

struct CallEdge {
  std::string caller;
  std::string callee;
  int caller_unit = -1;  // unit id of the call site in the caller's PDG
};

/// Whole-program dependence information. Owns the TranslationUnit so the
/// non-owning Stmt pointers in units stay valid, plus the raw source so
/// gadgets can quote original lines (the paper's Fig. 3 keeps block
/// boundary lines like "} else {" that have no statement unit).
struct ProgramGraph {
  frontend::TranslationUnit unit;
  std::vector<FunctionPdg> functions;
  std::vector<CallEdge> calls;
  std::string source;
  std::vector<std::string> source_lines;  // [0] == line 1, trimmed

  /// Trimmed source text of a 1-based line ("" if out of range).
  const std::string& line_text(int line) const;

  const FunctionPdg* pdg_of(const std::string& fn_name) const;
  std::vector<const CallEdge*> callers_of(const std::string& fn_name) const;
};

/// Build the PDG for one function.
FunctionPdg build_function_pdg(const frontend::FunctionDef& fn);

/// Parse a whole program and build every function's PDG + the call graph.
ProgramGraph build_program_graph(std::string_view source);

/// Build from an already-parsed unit (takes ownership).
ProgramGraph build_program_graph(frontend::TranslationUnit unit);

/// Build from an already-parsed unit plus the source it was parsed
/// from, so gadgets can quote lines exactly as if the source had been
/// parsed here. Used by the error-resilient scan frontend, which parses
/// through parse_with_recovery() instead of parse().
ProgramGraph build_program_graph(frontend::TranslationUnit unit,
                                 std::string_view source);

}  // namespace sevuldet::graph
